//! The sweep results store: one jsonl line per grid cell, written in cell
//! id order with a fixed key order, plus the parser that `--resume` uses
//! to re-load it.
//!
//! The offline `serde_json` stub cannot serialize, so both directions are
//! hand-rolled against a deliberately rigid schema: the emitter writes
//! keys in one fixed order with `f64` values in Rust's shortest
//! round-trip `Display` form, and the parser extracts fields positionally
//! by key. Because `Display → parse → Display` is the identity for `f64`,
//! a line copied through a resume cycle (or a clustered member derived
//! from a parsed representative) is byte-identical to the line a fresh
//! run would have written — the property the determinism proptests pin.
//!
//! Empty cells are normal: a pruned family or an all-non-finite sample
//! set yields `null` statistics fields, never a panic (see
//! docs/OBSERVABILITY.md).

use std::collections::BTreeMap;

use parflow_metrics::{SampleStats, Table};

use super::grid::{CellSpec, SWEEP_SCHEMA};

/// Store line status: the cell was actually simulated.
pub const STATUS_SIMULATED: &str = "simulated";
/// Store line status: copied from a clustered representative.
pub const STATUS_CLUSTERED: &str = "clustered";
/// Store line status: skipped by the dominance pruner (empty cell).
pub const STATUS_PRUNED: &str = "pruned";

/// Measured outcome of one cell. `stats` is `None` for an *empty* cell —
/// every flow sample was non-finite, or the cell was never simulated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellOutcome {
    /// Flow-time statistics (milliseconds) over finite samples.
    pub stats: Option<SampleStats>,
    /// Non-finite flow samples excluded from `stats`, kept out-of-band.
    pub nan: usize,
    /// OPT's max flow (milliseconds) on the same instance at speed 1;
    /// `None` when the cell was never simulated.
    pub opt_ms: f64,
}

impl CellOutcome {
    /// Aggregate raw per-job flow samples (ms). Non-finite samples are
    /// counted in `nan`; a cell with no finite samples is empty, not an
    /// error.
    pub fn from_flows_ms(flows_ms: &[f64], opt_ms: f64) -> CellOutcome {
        let stats = SampleStats::from_samples(flows_ms);
        let nan = match &stats {
            Some(s) => s.nonfinite,
            None => flows_ms.len(),
        };
        CellOutcome { stats, nan, opt_ms }
    }

    /// Max flow in milliseconds, `None` for empty cells.
    pub fn max_ms(&self) -> Option<f64> {
        self.stats.map(|s| s.max)
    }

    /// Competitive-style ratio `max / opt`, `None` when either side is
    /// unavailable or OPT is zero (empty instance).
    pub fn ratio(&self) -> Option<f64> {
        let max = self.max_ms()?;
        if self.opt_ms > 0.0 && self.opt_ms.is_finite() {
            Some(max / self.opt_ms)
        } else {
            None
        }
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) => json_num(v),
        None => "null".to_string(),
    }
}

/// The store header: schema version, canonical grid spec, cell count.
/// `--resume` refuses a store whose header differs (different grid ⇒
/// different cell identities).
pub fn header_line(canonical_grid: &str, cells: usize) -> String {
    format!("{{\"sweep\":{SWEEP_SCHEMA},\"grid\":\"{canonical_grid}\",\"cells\":{cells}}}")
}

/// One store line for a cell, in the fixed schema order. `source` is the
/// representative's id for clustered cells, `None` otherwise. `outcome`
/// is `None` for pruned cells.
pub fn cell_line(
    spec: &CellSpec,
    status: &str,
    source: Option<usize>,
    outcome: Option<&CellOutcome>,
) -> String {
    let src = match source {
        Some(id) => format!("{id}"),
        None => "null".to_string(),
    };
    let (count, nan) = match outcome {
        Some(o) => (o.stats.map(|s| s.count).unwrap_or(0), o.nan),
        None => (0, 0),
    };
    let stat = |f: fn(&SampleStats) -> f64| -> String {
        json_opt(outcome.and_then(|o| o.stats.as_ref().map(f)))
    };
    format!(
        "{{\"cell\":{},\"dist\":\"{}\",\"util\":{},\"m\":{},\"eps\":\"{}\",\
\"policy\":\"{}\",\"rep\":{},\"jobs\":{},\"qps\":{},\"status\":\"{}\",\"source\":{},\
\"count\":{},\"nan\":{},\"min_ms\":{},\"max_ms\":{},\"mean_ms\":{},\"p50_ms\":{},\
\"p95_ms\":{},\"p99_ms\":{},\"opt_ms\":{},\"ratio\":{}}}",
        spec.id,
        spec.dist.name(),
        json_num(spec.util),
        spec.m,
        spec.eps_str(),
        spec.policy.name(),
        spec.rep,
        spec.jobs,
        json_num(spec.qps),
        status,
        src,
        count,
        nan,
        stat(|s| s.min),
        stat(|s| s.max),
        stat(|s| s.mean),
        stat(|s| s.p50),
        stat(|s| s.p95),
        stat(|s| s.p99),
        json_opt(outcome.map(|o| o.opt_ms)),
        json_opt(outcome.and_then(CellOutcome::ratio)),
    )
}

/// A cell line re-loaded from a prior store.
#[derive(Clone, Debug)]
pub struct StoredCell {
    /// Cell id.
    pub id: usize,
    /// `simulated` | `clustered` | `pruned`.
    pub status: String,
    /// Representative id for clustered cells.
    pub source: Option<usize>,
    /// Parsed outcome (`None` for pruned cells).
    pub outcome: Option<CellOutcome>,
    /// The verbatim line, re-emitted on resume to guarantee byte
    /// identity with the original run.
    pub line: String,
}

/// Result of loading a prior store for `--resume`.
#[derive(Clone, Debug, Default)]
pub struct StoreLoad {
    /// Valid cell lines, by id.
    pub cells: BTreeMap<usize, StoredCell>,
    /// Lines dropped as torn or malformed (counted, never silently).
    pub dropped: usize,
}

/// Extract the raw token after `"key":` up to the next `,` or the closing
/// `}`. Sound for this schema only: values never contain commas or nested
/// objects, and the only strings are from fixed alphabets without quotes
/// or escapes.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn str_field(line: &str, key: &str) -> Option<String> {
    let raw = raw_field(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

fn num_field(line: &str, key: &str) -> Option<Option<f64>> {
    let raw = raw_field(line, key)?;
    if raw == "null" {
        return Some(None);
    }
    raw.parse::<f64>().ok().map(Some)
}

fn usize_field(line: &str, key: &str) -> Option<usize> {
    raw_field(line, key)?.parse().ok()
}

/// Parse one cell line. `None` for anything torn or off-schema.
pub fn parse_cell_line(line: &str) -> Option<StoredCell> {
    if !line.starts_with("{\"cell\":") || !line.ends_with('}') {
        return None;
    }
    let id = usize_field(line, "cell")?;
    let status = str_field(line, "status")?;
    if ![STATUS_SIMULATED, STATUS_CLUSTERED, STATUS_PRUNED].contains(&status.as_str()) {
        return None;
    }
    let source = match raw_field(line, "source")? {
        "null" => None,
        raw => Some(raw.parse::<usize>().ok()?),
    };
    let count = usize_field(line, "count")?;
    let nan = usize_field(line, "nan")?;
    let opt_ms = num_field(line, "opt_ms")?;
    let max_ms = num_field(line, "max_ms")?;
    let outcome = match (opt_ms, max_ms) {
        (None, _) => None,
        (Some(opt_ms), None) => Some(CellOutcome {
            stats: None,
            nan,
            opt_ms,
        }),
        (Some(opt_ms), Some(max)) => Some(CellOutcome {
            stats: Some(SampleStats {
                count,
                nonfinite: nan,
                min: num_field(line, "min_ms")??,
                max,
                mean: num_field(line, "mean_ms")??,
                p50: num_field(line, "p50_ms")??,
                p95: num_field(line, "p95_ms")??,
                p99: num_field(line, "p99_ms")??,
            }),
            nan,
            opt_ms,
        }),
    };
    Some(StoredCell {
        id,
        status,
        source,
        outcome,
        line: line.to_string(),
    })
}

/// Load a prior store for `--resume`.
///
/// The first line must be a complete header: if it parses as a header but
/// does not match `want_header`, the store belongs to a different grid
/// and loading *errors* (silently mixing grids would corrupt cell
/// identities). A torn or missing header makes the whole file count as
/// dropped — the sweep restarts from scratch. Cell lines are consumed in
/// order up to the first torn/malformed line; everything from that point
/// on is dropped (torn tail from a crashed run), counted in
/// [`StoreLoad::dropped`].
pub fn parse_store(text: &str, want_header: &str) -> Result<StoreLoad, String> {
    let mut load = StoreLoad::default();
    let mut lines = text.lines();
    match lines.next() {
        None => return Ok(load),
        Some(first) if first == want_header => {}
        Some(first) => {
            if first.starts_with("{\"sweep\":") && first.ends_with('}') {
                return Err(format!(
                    "store header does not match this grid\n  store: {first}\n  want:  {want_header}"
                ));
            }
            // Torn header: nothing in the file is trustworthy.
            load.dropped = text.lines().count();
            return Ok(load);
        }
    }
    let mut tail_torn = false;
    for line in lines {
        if tail_torn {
            load.dropped += 1;
            continue;
        }
        match parse_cell_line(line) {
            Some(cell) => {
                load.cells.entry(cell.id).or_insert(cell);
            }
            None => {
                tail_torn = true;
                load.dropped += 1;
            }
        }
    }
    Ok(load)
}

/// A crossover-table row: one (dist, m, ε, util) point with the mean
/// max-flow (over finite replicas, ms) per policy class and the verdict.
#[derive(Clone, Debug)]
pub struct CrossoverRow {
    /// Distribution name.
    pub dist: String,
    /// Machine size.
    pub m: usize,
    /// ε rendering.
    pub eps: String,
    /// Target utilization.
    pub util: f64,
    /// Mean max-flow of centralized FIFO, if present and non-empty.
    pub fifo_ms: Option<f64>,
    /// Mean max-flow of admit-first.
    pub admit_ms: Option<f64>,
    /// Best steal-k policy: `(k, mean max-flow)`.
    pub steal: Option<(u32, f64)>,
    /// `admit`, `steal:K`, or `-` when undecidable.
    pub verdict: String,
}

/// Build the steal-k vs admit-first crossover table from final records.
/// Pruned/empty cells simply contribute nothing — a policy with no finite
/// replicas at a point shows as `-`.
pub fn crossover_rows(cells: &[CellSpec], outcomes: &[Option<CellOutcome>]) -> Vec<CrossoverRow> {
    // (dist, m, eps, util-bits) → policy → (sum, n). Keyed by the util's
    // bit pattern so the BTreeMap ordering is total without float Ord.
    type PointKey = (String, usize, String, u64);
    let mut acc: BTreeMap<PointKey, BTreeMap<String, (f64, u32)>> = BTreeMap::new();
    for (spec, outcome) in cells.iter().zip(outcomes) {
        let Some(max) = outcome.as_ref().and_then(CellOutcome::max_ms) else {
            continue;
        };
        let key = (
            spec.dist.name().to_string(),
            spec.m,
            spec.eps_str(),
            spec.util.to_bits(),
        );
        let slot = acc
            .entry(key)
            .or_default()
            .entry(spec.policy.name())
            .or_insert((0.0, 0));
        slot.0 += max;
        slot.1 += 1;
    }
    let mut rows = Vec::new();
    for ((dist, m, eps, util_bits), policies) in acc {
        let mean = |name: &str| -> Option<f64> {
            policies
                .get(name)
                .filter(|(_, n)| *n > 0)
                .map(|(sum, n)| sum / *n as f64)
        };
        let fifo_ms = mean("fifo");
        let admit_ms = mean("admit");
        let mut steal: Option<(u32, f64)> = None;
        for (name, (sum, n)) in &policies {
            if let Some(k) = name
                .strip_prefix("steal:")
                .and_then(|k| k.parse::<u32>().ok())
            {
                let v = sum / *n as f64;
                if steal.map(|(_, best)| v < best).unwrap_or(true) {
                    steal = Some((k, v));
                }
            }
        }
        let verdict = match (admit_ms, steal) {
            (Some(a), Some((k, s))) if s < a => format!("steal:{k}"),
            (Some(_), Some(_)) => "admit".to_string(),
            (Some(_), None) => "admit".to_string(),
            (None, Some((k, _))) => format!("steal:{k}"),
            (None, None) => "-".to_string(),
        };
        rows.push(CrossoverRow {
            dist,
            m,
            eps,
            util: f64::from_bits(util_bits),
            fifo_ms,
            admit_ms,
            steal,
            verdict,
        });
    }
    rows
}

fn ms(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.2}"),
        _ => "-".to_string(),
    }
}

/// Render the crossover table (also pasted into EXPERIMENTS.md).
pub fn render_crossover(rows: &[CrossoverRow]) -> String {
    let mut t = Table::new([
        "dist",
        "m",
        "eps",
        "util",
        "fifo_ms",
        "admit_ms",
        "best_steal",
        "steal_ms",
        "winner",
    ]);
    for r in rows {
        t.row([
            r.dist.clone(),
            format!("{}", r.m),
            r.eps.clone(),
            format!("{}", r.util),
            ms(r.fifo_ms),
            ms(r.admit_ms),
            r.steal
                .map(|(k, _)| format!("steal:{k}"))
                .unwrap_or_else(|| "-".to_string()),
            ms(r.steal.map(|(_, v)| v)),
            r.verdict.clone(),
        ]);
    }
    t.render()
}

/// The same grid reference as a Markdown table for EXPERIMENTS.md.
pub fn render_crossover_markdown(rows: &[CrossoverRow]) -> String {
    let mut out = String::from(
        "| dist | m | eps | util | fifo (ms) | admit (ms) | best steal | steal (ms) | winner |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.dist,
            r.m,
            r.eps,
            r.util,
            ms(r.fifo_ms),
            ms(r.admit_ms),
            r.steal
                .map(|(k, _)| format!("steal:{k}"))
                .unwrap_or_else(|| "-".to_string()),
            ms(r.steal.map(|(_, v)| v)),
            r.verdict,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::SweepGrid;

    fn smoke_cells() -> Vec<CellSpec> {
        SweepGrid::parse("smoke").unwrap().cells()
    }

    #[test]
    fn cell_line_round_trips_bytes() {
        let cells = smoke_cells();
        let out = CellOutcome::from_flows_ms(&[1.5, 2.25, f64::NAN, 40.0], 3.75);
        let line = cell_line(&cells[0], STATUS_SIMULATED, None, Some(&out));
        let parsed = parse_cell_line(&line).unwrap();
        assert_eq!(parsed.id, cells[0].id);
        assert_eq!(parsed.status, STATUS_SIMULATED);
        let back = parsed.outcome.unwrap();
        assert_eq!(back, out);
        // Re-emitting the parsed outcome reproduces the exact bytes.
        let again = cell_line(&cells[0], STATUS_SIMULATED, None, Some(&back));
        assert_eq!(again, line);
    }

    #[test]
    fn empty_and_pruned_cells_serialize_null_not_nan() {
        let cells = smoke_cells();
        // All-NaN flows: an empty cell, stats absent, nan counted.
        let empty = CellOutcome::from_flows_ms(&[f64::NAN, f64::NAN], 2.0);
        assert!(empty.stats.is_none());
        assert_eq!(empty.nan, 2);
        let line = cell_line(&cells[1], STATUS_SIMULATED, None, Some(&empty));
        assert!(line.contains("\"max_ms\":null"));
        assert!(
            !line.contains("NaN"),
            "no NaN literals in the store: {line}"
        );
        let back = parse_cell_line(&line).unwrap().outcome.unwrap();
        assert_eq!(back, empty);
        // Pruned: no outcome at all.
        let pruned = cell_line(&cells[2], STATUS_PRUNED, None, None);
        assert!(pruned.contains("\"opt_ms\":null"));
        let parsed = parse_cell_line(&pruned).unwrap();
        assert!(parsed.outcome.is_none());
        assert_eq!(parsed.status, STATUS_PRUNED);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let cells = smoke_cells();
        let header = header_line("g", cells.len());
        let out = CellOutcome::from_flows_ms(&[1.0, 2.0], 1.0);
        let l0 = cell_line(&cells[0], STATUS_SIMULATED, None, Some(&out));
        let l1 = cell_line(&cells[1], STATUS_SIMULATED, None, Some(&out));
        let torn = &l1[..l1.len() / 2];
        let text = format!("{header}\n{l0}\n{torn}");
        let load = parse_store(&text, &header).unwrap();
        assert_eq!(load.cells.len(), 1);
        assert_eq!(load.dropped, 1);
        assert!(load.cells.contains_key(&cells[0].id));
    }

    #[test]
    fn grid_mismatch_is_an_error_torn_header_is_fresh() {
        let want = header_line("grid-a", 4);
        let other = header_line("grid-b", 4);
        assert!(parse_store(&format!("{other}\n"), &want).is_err());
        // A torn header cannot be trusted: everything drops, no error.
        let torn = &want[..want.len() - 3];
        let load = parse_store(&format!("{torn}\njunk"), &want).unwrap();
        assert!(load.cells.is_empty());
        assert_eq!(load.dropped, 2);
        // Empty file: fresh start.
        let load = parse_store("", &want).unwrap();
        assert!(load.cells.is_empty());
        assert_eq!(load.dropped, 0);
    }

    #[test]
    fn crossover_prefers_lower_mean_max_flow() {
        let cells = SweepGrid::parse("dist=bing;util=0.8;policy=admit,steal:4,fifo;m=4;seeds=1")
            .unwrap()
            .cells();
        let outcomes: Vec<Option<CellOutcome>> = cells
            .iter()
            .map(|c| {
                let v = match c.policy.name().as_str() {
                    "fifo" => 50.0,
                    "admit" => 20.0,
                    _ => 10.0,
                };
                Some(CellOutcome::from_flows_ms(&[v], 5.0))
            })
            .collect();
        let rows = crossover_rows(&cells, &outcomes);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].verdict, "steal:4");
        assert_eq!(rows[0].steal, Some((4, 10.0)));
        let rendered = render_crossover(&rows);
        assert!(rendered.contains("steal:4"));
        let md = render_crossover_markdown(&rows);
        assert!(md.starts_with("| dist |"));
    }
}
