//! Dominance pruning: skip grid families that are already clearly beaten
//! at a *lower* load on the same instance family.
//!
//! The grid is evaluated level by level (ascending utilization). After a
//! level completes, each policy family (dist, m, ε, jobs, policy) is
//! compared against the best max-flow achieved by any policy in its
//! comparison group (same dist, m, ε, jobs) at that level. A family whose
//! best replica is at least `factor`× the group winner is dominated: max
//! flow time is monotone in load for every policy here, and a policy that
//! loses by 4× at util 0.7 does not come back at util 1.15 — the paper's
//! steal-k/admit-first crossovers move the *other* way (the gap widens
//! with load). Its cells at all higher levels are emitted as `pruned`
//! empty cells instead of being simulated.
//!
//! Decisions are pure functions of (spec, per-cell max-flow) pairs, so a
//! `--resume` run that replays stored levels reconstructs the exact same
//! prune set without re-simulating anything.

use std::collections::{BTreeMap, BTreeSet};

use super::grid::CellSpec;

/// Level-by-level dominance pruner. `factor ≤ 1` (or non-finite) disables
/// pruning entirely.
#[derive(Clone, Debug)]
pub struct Pruner {
    factor: f64,
    dead: BTreeSet<String>,
}

impl Pruner {
    /// A pruner that kills a family once it is `factor`× worse than its
    /// group's winner at any completed level.
    pub fn new(factor: f64) -> Pruner {
        Pruner {
            factor,
            dead: BTreeSet::new(),
        }
    }

    /// Whether this cell's family has been pruned at a lower level.
    pub fn is_pruned(&self, cell: &CellSpec) -> bool {
        self.dead.contains(&cell.family())
    }

    /// Families pruned so far.
    pub fn pruned_families(&self) -> usize {
        self.dead.len()
    }

    /// Feed one completed level: `(cell, max_ms)` for every cell at the
    /// level, `None` for empty cells (no finite flows — already-pruned
    /// cells report `None` too and never resurrect a family). Returns the
    /// families newly pruned by this level.
    pub fn observe_level<'a, I>(&mut self, level: I) -> Vec<String>
    where
        I: IntoIterator<Item = (&'a CellSpec, Option<f64>)>,
    {
        if !(self.factor.is_finite() && self.factor > 1.0) {
            return Vec::new();
        }
        // Best (minimum over replicas) max-flow per family, then the
        // winner per comparison group.
        let mut fam_best: BTreeMap<String, f64> = BTreeMap::new();
        let mut fam_group: BTreeMap<String, String> = BTreeMap::new();
        for (cell, max_ms) in level {
            let v = match max_ms {
                Some(v) if v.is_finite() => v,
                _ => continue,
            };
            let fam = cell.family();
            fam_group.entry(fam.clone()).or_insert_with(|| cell.group());
            let slot = fam_best.entry(fam).or_insert(f64::INFINITY);
            if v < *slot {
                *slot = v;
            }
        }
        let mut group_best: BTreeMap<&str, f64> = BTreeMap::new();
        for (fam, &best) in &fam_best {
            if let Some(group) = fam_group.get(fam) {
                let slot = group_best.entry(group.as_str()).or_insert(f64::INFINITY);
                if best < *slot {
                    *slot = best;
                }
            }
        }
        let mut newly: Vec<String> = Vec::new();
        for (fam, &best) in &fam_best {
            let Some(group) = fam_group.get(fam) else {
                continue;
            };
            let Some(&winner) = group_best.get(group.as_str()) else {
                continue;
            };
            // Guard the degenerate all-zero level (empty instances): a
            // 0 ms winner would prune every positive family at factor ∞.
            if winner > 0.0 && best >= self.factor * winner && !self.dead.contains(fam) {
                self.dead.insert(fam.clone());
                newly.push(fam.clone());
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::SweepGrid;

    fn level_cells() -> Vec<CellSpec> {
        SweepGrid::parse("dist=bing;util=0.5,0.9;policy=fifo,admit,steal:4;m=4;seeds=2")
            .unwrap()
            .cells()
    }

    #[test]
    fn dominated_family_is_pruned_for_higher_levels() {
        let cells = level_cells();
        let level0: Vec<&CellSpec> = cells.iter().filter(|c| c.level == 0).collect();
        let mut pr = Pruner::new(4.0);
        // FIFO loses by 10x; admit/steal tie at 10ms.
        let obs: Vec<(&CellSpec, Option<f64>)> = level0
            .iter()
            .map(|c| {
                let v = match c.policy.name().as_str() {
                    "fifo" => 100.0,
                    _ => 10.0,
                };
                (*c, Some(v))
            })
            .collect();
        let newly = pr.observe_level(obs);
        assert_eq!(newly.len(), 1);
        assert!(newly[0].contains("fifo"));
        let level1_fifo = cells
            .iter()
            .find(|c| c.level == 1 && !c.policy.seed_dependent())
            .unwrap();
        assert!(pr.is_pruned(level1_fifo));
        let level1_admit = cells
            .iter()
            .find(|c| c.level == 1 && c.policy.name() == "admit")
            .unwrap();
        assert!(!pr.is_pruned(level1_admit));
    }

    #[test]
    fn close_races_are_kept() {
        let cells = level_cells();
        let level0: Vec<(&CellSpec, Option<f64>)> = cells
            .iter()
            .filter(|c| c.level == 0)
            .map(|c| {
                (
                    c,
                    Some(if c.policy.name() == "fifo" {
                        30.0
                    } else {
                        10.0
                    }),
                )
            })
            .collect();
        let mut pr = Pruner::new(4.0);
        assert!(
            pr.observe_level(level0).is_empty(),
            "3x is under the 4x bar"
        );
        assert_eq!(pr.pruned_families(), 0);
    }

    #[test]
    fn empty_cells_and_disabled_factor_never_prune() {
        let cells = level_cells();
        let level0: Vec<(&CellSpec, Option<f64>)> = cells
            .iter()
            .filter(|c| c.level == 0)
            .map(|c| (c, None))
            .collect();
        let mut pr = Pruner::new(4.0);
        assert!(pr.observe_level(level0.clone()).is_empty());
        // factor <= 1 disables even on wildly dominated data.
        let mut off = Pruner::new(0.0);
        let obs: Vec<(&CellSpec, Option<f64>)> = cells
            .iter()
            .filter(|c| c.level == 0)
            .map(|c| (c, Some(if c.policy.name() == "fifo" { 1e9 } else { 1.0 })))
            .collect();
        assert!(off.observe_level(obs).is_empty());
    }

    #[test]
    fn best_replica_defends_the_family() {
        // One awful replica must not doom a family whose best replica wins.
        let cells = level_cells();
        let mut pr = Pruner::new(4.0);
        let obs: Vec<(&CellSpec, Option<f64>)> = cells
            .iter()
            .filter(|c| c.level == 0)
            .map(|c| {
                let v = match (c.policy.name().as_str(), c.rep) {
                    ("admit", 0) => 500.0, // unlucky seed
                    ("admit", _) => 10.0,  // best replica ties the winner
                    _ => 10.0,
                };
                (c, Some(v))
            })
            .collect();
        assert!(pr.observe_level(obs).is_empty());
    }
}
