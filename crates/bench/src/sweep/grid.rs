//! Sweep grid specification: the cartesian product over
//! (workload × arrival load × policy × k × ε × m) with seeded replicas.
//!
//! A [`SweepGrid`] is parsed from a compact `key=value;…` spec string (or a
//! named preset) and enumerated into [`CellSpec`]s in a *fixed* nested
//! order — ascending load level first, so the pruner can consume completed
//! levels before higher loads are dispatched. The enumeration index is the
//! cell's identity in the results store; everything downstream (clustering,
//! pruning, resume) keys off it, so the order is part of the store schema
//! and must never change for a given canonical spec.

use parflow_core::StealPolicy;
use parflow_time::Speed;
use parflow_workloads::{qps_for_utilization, DistKind};

/// Results-store format version (the `"sweep"` header field).
pub const SWEEP_SCHEMA: u32 = 1;

/// 64-bit FNV-1a over a byte string: the deterministic, dependency-free
/// hash behind cell fingerprints and derived seeds.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A scheduling policy swept over. `fifo` is the centralized control; the
/// others run on the work-stealing engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SweepPolicy {
    /// Centralized FIFO (seed-independent: all seed replicas cluster).
    Fifo,
    /// Admit-first work stealing (the paper's k = 0 extreme).
    AdmitFirst,
    /// Steal-k-first work stealing.
    StealK(u32),
}

impl SweepPolicy {
    /// Parse `fifo` | `admit` | `steal:K` (with `steal:0` normalized to
    /// `admit`, so duplicate spellings cluster rather than double-run).
    pub fn parse(s: &str) -> Result<SweepPolicy, String> {
        match s {
            "fifo" => Ok(SweepPolicy::Fifo),
            "admit" => Ok(SweepPolicy::AdmitFirst),
            _ => match s.strip_prefix("steal:") {
                Some(k) => match k.parse::<u32>() {
                    Ok(0) => Ok(SweepPolicy::AdmitFirst),
                    Ok(k) => Ok(SweepPolicy::StealK(k)),
                    Err(_) => Err(format!("bad steal parameter in `{s}`")),
                },
                None => Err(format!("unknown policy `{s}` (want fifo|admit|steal:K)")),
            },
        }
    }

    /// Canonical name, also the store's `policy` field.
    pub fn name(&self) -> String {
        match self {
            SweepPolicy::Fifo => "fifo".to_string(),
            SweepPolicy::AdmitFirst => "admit".to_string(),
            SweepPolicy::StealK(k) => format!("steal:{k}"),
        }
    }

    /// Whether the simulated schedule depends on the engine seed. FIFO is
    /// deterministic, so its seed replicas are provably identical and the
    /// clusterer simulates only one representative.
    pub fn seed_dependent(&self) -> bool {
        !matches!(self, SweepPolicy::Fifo)
    }

    /// The work-stealing policy, `None` for the centralized control.
    pub fn steal_policy(&self) -> Option<StealPolicy> {
        match self {
            SweepPolicy::Fifo => None,
            SweepPolicy::AdmitFirst => Some(StealPolicy::AdmitFirst),
            SweepPolicy::StealK(k) => Some(StealPolicy::StealKFirst { k: *k }),
        }
    }
}

/// The full sweep specification. Axes are stored canonically (sorted,
/// deduplicated) so two spellings of the same grid produce byte-identical
/// stores.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepGrid {
    /// Work distributions.
    pub dists: Vec<DistKind>,
    /// Target utilizations (the load axis), ascending — these are the
    /// pruner's levels. QPS is derived per (dist, m) so every machine size
    /// sees the same relative load.
    pub utils: Vec<f64>,
    /// Policies swept.
    pub policies: Vec<SweepPolicy>,
    /// Machine sizes.
    pub ms: Vec<usize>,
    /// Speed augmentations ε as reduced fractions; speed = 1 + ε.
    pub epss: Vec<(u64, u64)>,
    /// Seed replicas per configuration.
    pub seeds: u32,
    /// Jobs per generated instance.
    pub jobs: usize,
    /// Base seed mixed into every derived workload/engine seed.
    pub base_seed: u64,
}

/// One enumerated grid point: a fully-resolved simulation request.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Identity: the enumeration index, stable for a canonical grid.
    pub id: usize,
    /// Load-level index (position of `util` in the grid's `utils`).
    pub level: usize,
    /// Work distribution.
    pub dist: DistKind,
    /// Target utilization.
    pub util: f64,
    /// Machine size.
    pub m: usize,
    /// Speed augmentation ε as a reduced fraction.
    pub eps: (u64, u64),
    /// Policy.
    pub policy: SweepPolicy,
    /// Seed-replica index in `0..grid.seeds`.
    pub rep: u32,
    /// Jobs per instance.
    pub jobs: usize,
    /// Derived arrival rate.
    pub qps: f64,
    /// Instance-generation seed (shared by every cell on this instance).
    pub workload_seed: u64,
    /// Engine seed for this replica.
    pub engine_seed: u64,
}

impl CellSpec {
    /// Canonical ε rendering (`0`, `1`, `1/10`).
    pub fn eps_str(&self) -> String {
        eps_str(self.eps)
    }

    /// Engine speed `1 + ε`.
    pub fn speed(&self) -> Speed {
        Speed::augmented(self.eps.0, self.eps.1)
    }

    /// The instance this cell simulates: cells sharing a key share one
    /// generated instance (and one OPT computation) in the fan-out stage.
    pub fn instance_key(&self) -> String {
        format!(
            "{}/u{}/m{}/j{}",
            self.dist.name(),
            self.util,
            self.m,
            self.jobs
        )
    }

    /// The pruner's family: everything but load level and seed replica.
    /// Once a family is dominated at some load, all its higher-load cells
    /// are skipped.
    pub fn family(&self) -> String {
        format!(
            "{}/m{}/e{}/j{}/{}",
            self.dist.name(),
            self.m,
            self.eps_str(),
            self.jobs,
            self.policy.name()
        )
    }

    /// The dominance comparison group: the family minus policy. Policies
    /// within one group race on identical instances.
    pub fn group(&self) -> String {
        format!(
            "{}/m{}/e{}/j{}",
            self.dist.name(),
            self.m,
            self.eps_str(),
            self.jobs
        )
    }
}

fn eps_str(eps: (u64, u64)) -> String {
    match eps {
        (0, _) => "0".to_string(),
        (n, 1) => format!("{n}"),
        (n, d) => format!("{n}/{d}"),
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

fn parse_eps(s: &str) -> Result<(u64, u64), String> {
    let (num, den) = match s.split_once('/') {
        Some((n, d)) => (
            n.parse::<u64>().map_err(|_| format!("bad eps `{s}`"))?,
            d.parse::<u64>().map_err(|_| format!("bad eps `{s}`"))?,
        ),
        None => (s.parse::<u64>().map_err(|_| format!("bad eps `{s}`"))?, 1),
    };
    if den == 0 {
        return Err(format!("bad eps `{s}`: zero denominator"));
    }
    if num == 0 {
        return Ok((0, 1));
    }
    let g = gcd(num, den);
    Ok((num / g, den / g))
}

fn parse_dist(s: &str) -> Result<DistKind, String> {
    match s {
        "bing" => Ok(DistKind::Bing),
        "finance" => Ok(DistKind::Finance),
        "lognormal" | "log-normal" => Ok(DistKind::LogNormal),
        other => Err(format!(
            "unknown dist `{other}` (want bing|finance|lognormal)"
        )),
    }
}

/// Named preset: the CI/test smoke grid (12 cells, sub-second).
pub const PRESET_SMOKE: &str =
    "dist=bing;util=0.6,0.9;policy=fifo,admit,steal:4;m=4;eps=0;seeds=2;jobs=300";

/// Named preset: the phase-diagram grid behind EXPERIMENTS.md (720 cells).
pub const PRESET_PHASE: &str = "dist=bing,finance;util=0.55,0.7,0.85,1.0,1.15;\
policy=fifo,admit,steal:1,steal:4,steal:16,steal:64;m=8,16;eps=0,1/10;seeds=3;jobs=2000";

impl SweepGrid {
    /// Parse a grid spec: a preset name (`smoke`, `phase`) or a
    /// `key=v1,v2;key=v;…` string with keys `dist`, `util`, `policy`, `m`,
    /// `eps`, `seeds`, `jobs`, `seed`. Missing keys take the smoke
    /// preset's defaults for scalar knobs and error for empty axes.
    pub fn parse(spec: &str) -> Result<SweepGrid, String> {
        let spec = match spec {
            "smoke" => PRESET_SMOKE,
            "phase" => PRESET_PHASE,
            other => other,
        };
        let mut dists: Vec<DistKind> = Vec::new();
        let mut utils: Vec<f64> = Vec::new();
        let mut policies: Vec<SweepPolicy> = Vec::new();
        let mut ms: Vec<usize> = Vec::new();
        let mut epss: Vec<(u64, u64)> = Vec::new();
        let mut seeds: u32 = 1;
        let mut jobs: usize = 1_000;
        let mut base_seed: u64 = 0x9af1;
        for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
            let (key, vals) = part
                .split_once('=')
                .ok_or_else(|| format!("bad grid clause `{part}` (want key=v1,v2)"))?;
            let key = key.trim();
            let vals: Vec<&str> = vals.split(',').map(str::trim).collect();
            match key {
                "dist" => {
                    for v in &vals {
                        dists.push(parse_dist(v)?);
                    }
                }
                "util" => {
                    for v in &vals {
                        let u: f64 = v.parse().map_err(|_| format!("bad util `{v}`"))?;
                        if !(u.is_finite() && u > 0.0) {
                            return Err(format!("util must be finite and positive, got `{v}`"));
                        }
                        utils.push(u);
                    }
                }
                "policy" => {
                    for v in &vals {
                        policies.push(SweepPolicy::parse(v)?);
                    }
                }
                "m" => {
                    for v in &vals {
                        let m: usize = v.parse().map_err(|_| format!("bad m `{v}`"))?;
                        if m == 0 {
                            return Err("m must be at least 1".to_string());
                        }
                        ms.push(m);
                    }
                }
                "eps" => {
                    for v in &vals {
                        epss.push(parse_eps(v)?);
                    }
                }
                "seeds" => {
                    seeds = single(key, &vals)?;
                    if seeds == 0 {
                        return Err("seeds must be at least 1".to_string());
                    }
                }
                "jobs" => {
                    jobs = single(key, &vals)?;
                    if jobs == 0 {
                        return Err("jobs must be at least 1".to_string());
                    }
                    // Engines index jobs with u32 ids; past that the
                    // streaming path returns TooManyJobs mid-run, so a
                    // grid that can never complete is refused up front.
                    if jobs as u64 > u32::MAX as u64 {
                        return Err(format!(
                            "jobs={jobs} exceeds the engine job-id space (max {})",
                            u32::MAX
                        ));
                    }
                }
                "seed" => {
                    base_seed = single(key, &vals)?;
                }
                other => return Err(format!("unknown grid key `{other}`")),
            }
        }
        if dists.is_empty() {
            return Err("grid needs at least one dist".to_string());
        }
        if utils.is_empty() {
            return Err("grid needs at least one util".to_string());
        }
        if policies.is_empty() {
            return Err("grid needs at least one policy".to_string());
        }
        if ms.is_empty() {
            ms.push(16);
        }
        if epss.is_empty() {
            epss.push((0, 1));
        }
        // Canonicalize: sort + dedup every axis so equivalent spellings
        // yield identical cell enumerations (and store headers).
        utils.sort_by(f64::total_cmp);
        utils.dedup();
        dists.sort_by_key(|d| d.name());
        dists.dedup_by_key(|d| d.name());
        policies.sort();
        policies.dedup();
        ms.sort_unstable();
        ms.dedup();
        epss.sort_unstable();
        epss.dedup();
        Ok(SweepGrid {
            dists,
            utils,
            policies,
            ms,
            epss,
            seeds,
            jobs,
            base_seed,
        })
    }

    /// The canonical spec string: parse-stable, embedded in the store
    /// header so `--resume` can refuse a mismatched grid.
    pub fn canonical(&self) -> String {
        let join = |parts: Vec<String>| parts.join(",");
        format!(
            "dist={};util={};policy={};m={};eps={};seeds={};jobs={};seed={:#x}",
            join(self.dists.iter().map(|d| d.name().to_string()).collect()),
            join(self.utils.iter().map(|u| format!("{u}")).collect()),
            join(self.policies.iter().map(SweepPolicy::name).collect()),
            join(self.ms.iter().map(|m| format!("{m}")).collect()),
            join(self.epss.iter().map(|&e| eps_str(e)).collect()),
            self.seeds,
            self.jobs,
            self.base_seed,
        )
    }

    /// Total cell count (`len` of [`SweepGrid::cells`]).
    pub fn cell_count(&self) -> usize {
        self.dists.len()
            * self.utils.len()
            * self.policies.len()
            * self.ms.len()
            * self.epss.len()
            * self.seeds as usize
    }

    /// Enumerate every cell in store order: level-major (ascending load),
    /// then dist → m → ε → policy → replica. The index is the cell id.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for (level, &util) in self.utils.iter().enumerate() {
            for &dist in &self.dists {
                for &m in &self.ms {
                    let qps = qps_for_utilization(dist, m, util);
                    let inst_tag = format!("inst/{}/u{}/m{}/j{}", dist.name(), util, m, self.jobs);
                    let workload_seed = self.base_seed ^ fnv1a64(inst_tag.as_bytes());
                    for &eps in &self.epss {
                        for &policy in &self.policies {
                            for rep in 0..self.seeds {
                                let cell_tag = format!(
                                    "engine/{}/u{}/m{}/e{}/j{}/{}/r{}",
                                    dist.name(),
                                    util,
                                    m,
                                    eps_str(eps),
                                    self.jobs,
                                    policy.name(),
                                    rep
                                );
                                out.push(CellSpec {
                                    id: out.len(),
                                    level,
                                    dist,
                                    util,
                                    m,
                                    eps,
                                    policy,
                                    rep,
                                    jobs: self.jobs,
                                    qps,
                                    workload_seed,
                                    engine_seed: self.base_seed ^ fnv1a64(cell_tag.as_bytes()),
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn single<T: std::str::FromStr>(key: &str, vals: &[&str]) -> Result<T, String> {
    match vals {
        [v] => v.parse().map_err(|_| format!("bad {key} `{v}`")),
        _ => Err(format!("{key} takes exactly one value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_enumerate() {
        let smoke = SweepGrid::parse("smoke").unwrap();
        assert_eq!(smoke.cell_count(), 12);
        assert_eq!(smoke.cells().len(), 12);
        let phase = SweepGrid::parse("phase").unwrap();
        assert_eq!(phase.cell_count(), 720);
        assert!(phase.cell_count() >= 500, "phase grid must be paper-scale");
    }

    #[test]
    fn canonicalization_is_spelling_independent() {
        let a = SweepGrid::parse("dist=finance,bing;util=0.9,0.6;policy=steal:4,fifo;m=4;seeds=2")
            .unwrap();
        let b = SweepGrid::parse("dist=bing,finance;util=0.6,0.9;policy=fifo,steal:4;m=4;seeds=2")
            .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        let ca = a.cells();
        let cb = b.cells();
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.engine_seed, y.engine_seed);
            assert_eq!(x.workload_seed, y.workload_seed);
        }
    }

    #[test]
    fn steal_zero_normalizes_to_admit() {
        assert_eq!(
            SweepPolicy::parse("steal:0").unwrap(),
            SweepPolicy::AdmitFirst
        );
        let g = SweepGrid::parse("dist=bing;util=1;policy=admit,steal:0;m=2").unwrap();
        assert_eq!(g.policies, vec![SweepPolicy::AdmitFirst]);
    }

    #[test]
    fn cells_are_level_major_and_ids_dense() {
        let g = SweepGrid::parse("dist=bing;util=0.8,0.5;policy=admit,fifo;m=2,4;seeds=2").unwrap();
        let cells = g.cells();
        let mut last_level = 0;
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i);
            assert!(c.level >= last_level, "levels must be non-decreasing");
            last_level = c.level;
        }
        assert!((cells[0].util - 0.5).abs() < 1e-12, "lowest load first");
    }

    #[test]
    fn bad_specs_error() {
        assert!(SweepGrid::parse("dist=bogus;util=1;policy=fifo").is_err());
        assert!(SweepGrid::parse("dist=bing;util=-1;policy=fifo").is_err());
        assert!(SweepGrid::parse("dist=bing;util=1;policy=steal:x").is_err());
        assert!(SweepGrid::parse("dist=bing;util=1;policy=fifo;eps=1/0").is_err());
        assert!(SweepGrid::parse("nonsense").is_err());
        assert!(SweepGrid::parse("dist=bing;util=1").is_err(), "no policies");
    }

    #[test]
    fn workload_seed_shared_across_policies_not_reps() {
        let g = SweepGrid::parse("dist=bing;util=1;policy=admit,steal:4;m=2;seeds=2").unwrap();
        let cells = g.cells();
        assert!(cells
            .iter()
            .all(|c| c.workload_seed == cells[0].workload_seed));
        // Engine seeds differ across reps and policies.
        let mut seeds: Vec<u64> = cells
            .iter()
            .filter(|c| c.policy.seed_dependent())
            .map(|c| c.engine_seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4, "2 policies x 2 reps distinct engine seeds");
    }
}
