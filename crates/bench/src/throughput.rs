//! Engine throughput measurement: the bench trajectory baseline.
//!
//! Wall-clock throughput (rounds/sec, steal-attempts/sec) is inherently
//! machine- and run-dependent, so it lives here at the bench layer —
//! [`parflow_core::EngineStats`] stays a purely deterministic counter set
//! that golden and differential tests can compare bit-for-bit.
//!
//! `repro --bench-json PATH` serializes a [`BenchReport`] for the committed
//! `BENCH_engine.json` baseline; `scripts/bench_check` regenerates one and
//! fails CI on a >2× throughput regression against that baseline.

use crate::experiments::{jobs_per_point, PAPER_K, PAPER_M};
use parflow_core::{
    run_priority, run_priority_observed, run_worksteal_observed, simulate_worksteal, Fifo,
    SimConfig, StealPolicy,
};
use parflow_obs::Recorder;
use parflow_workloads::{DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Throughput of one engine configuration on the probe instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EngineThroughput {
    /// Simulated rounds advanced.
    pub rounds: u64,
    /// Steal attempts issued (0 for the centralized engine).
    pub steal_attempts: u64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// `rounds / wall_seconds`.
    pub rounds_per_sec: f64,
    /// `steal_attempts / wall_seconds` (0 for the centralized engine).
    pub steal_attempts_per_sec: f64,
    /// Heap allocation events during the run, when the probe binary was
    /// built with `--features bench-alloc`; absent otherwise.
    #[serde(default)]
    pub allocs: Option<u64>,
    /// `allocs / rounds`, the steady-state allocation pressure. Arena
    /// recycling should keep this ≈ 0.
    #[serde(default)]
    pub allocs_per_round: Option<f64>,
}

impl EngineThroughput {
    fn new(rounds: u64, steal_attempts: u64, wall_seconds: f64, allocs: Option<u64>) -> Self {
        let secs = wall_seconds.max(1e-9);
        EngineThroughput {
            rounds,
            steal_attempts,
            wall_seconds,
            rounds_per_sec: rounds as f64 / secs,
            steal_attempts_per_sec: steal_attempts as f64 / secs,
            allocs,
            allocs_per_round: allocs.map(|a| a as f64 / rounds.max(1) as f64),
        }
    }
}

/// The full baseline document written by `repro --bench-json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Format version for forward compatibility.
    pub schema: u32,
    /// Jobs per probe instance (`PARFLOW_JOBS`-sensitive).
    pub jobs: usize,
    /// Processors in the probe instance.
    pub m: usize,
    /// Work-stealing engine, steal-16-first, free steals (Fig. 2 model).
    pub ws_steal16: EngineThroughput,
    /// Work-stealing engine, admit-first, free steals.
    pub ws_admit: EngineThroughput,
    /// Centralized FIFO engine (event-horizon stepping).
    pub centralized_fifo: EngineThroughput,
    /// Wall-clock seconds of the enclosing `repro` invocation, when the
    /// caller timed one (e.g. `repro all --bench-json`).
    pub repro_wall_seconds: Option<f64>,
}

/// Run the fixed throughput probes.
///
/// One Bing instance at QPS 1000 (the Figure 2 midpoint) drives all three
/// engine configurations, so the numbers are comparable across PRs as long
/// as `PARFLOW_JOBS` and the seed stay at their defaults.
pub fn measure(seed: u64) -> BenchReport {
    let n = jobs_per_point().min(20_000);
    let m = PAPER_M;
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n, seed).generate();
    let cfg = SimConfig::new(m).with_free_steals();

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: PAPER_K }, seed);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let ws_steal16 = EngineThroughput::new(r.total_rounds, r.stats.steal_attempts, wall, allocs);

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let ws_admit = EngineThroughput::new(r.total_rounds, r.stats.steal_attempts, wall, allocs);

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let (r, _) = run_priority(&inst, &SimConfig::new(m), &Fifo);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let centralized_fifo = EngineThroughput::new(r.total_rounds, 0, wall, allocs);

    BenchReport {
        schema: 1,
        jobs: n,
        m,
        ws_steal16,
        ws_admit,
        centralized_fifo,
        repro_wall_seconds: None,
    }
}

/// Run the throughput probe instance once through the *observed* engine
/// entry points, feeding per-worker steal/admission counters and flow-time
/// samples into `rec`. Backs `repro --obs-json`: the report then contains
/// `ws.worker.*[i]` counters (u64-exact, no saturation) next to the
/// centralized engine's horizon/quiescence telemetry.
pub fn probe_observed(seed: u64, jobs_cap: usize, rec: &mut dyn Recorder) {
    let n = jobs_per_point().min(jobs_cap);
    let m = PAPER_M;
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n, seed).generate();
    let cfg = SimConfig::new(m).with_free_steals();
    let _ = run_worksteal_observed(
        &inst,
        &cfg,
        StealPolicy::StealKFirst { k: PAPER_K },
        seed,
        rec,
    );
    let _ = run_priority_observed(&inst, &SimConfig::new(m), &Fifo, rec);
}

/// Run a small burst on the *real* threaded executor and feed its
/// per-worker stats and wall-clock latency histogram into `rec`. The
/// second half of the `repro --obs-json` epilogue.
pub fn runtime_probe_observed(rec: &mut dyn Recorder) {
    use parflow_runtime::{run_workload, JobSpec, RtPolicy, RuntimeConfig};
    use std::time::Duration;
    let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 }).with_seed(7);
    let wl: Vec<_> = (0..8u64)
        .map(|i| (Duration::from_micros(50 * i), JobSpec::split(20_000, 4)))
        .collect();
    let r = run_workload(&cfg, &wl);
    r.observe_into(rec);
}

/// Serialize `report` to pretty JSON with a trailing newline.
///
/// Hand-rolled: the offline `serde_json` stub cannot serialize, and this
/// fixed schema is trivial to emit directly. The derives stay on the types
/// so real `serde_json` round-trips work when the workspace is built with
/// the genuine dependency.
pub fn to_json(report: &BenchReport) -> String {
    fn engine(name: &str, e: &EngineThroughput) -> String {
        let alloc_fields = match (e.allocs, e.allocs_per_round) {
            (Some(a), Some(apr)) => {
                format!(",\n    \"allocs\": {a},\n    \"allocs_per_round\": {apr:.4}")
            }
            _ => String::new(),
        };
        format!(
            "  \"{name}\": {{\n    \"rounds\": {},\n    \"steal_attempts\": {},\n    \
             \"wall_seconds\": {:.6},\n    \"rounds_per_sec\": {:.1},\n    \
             \"steal_attempts_per_sec\": {:.1}{}\n  }}",
            e.rounds,
            e.steal_attempts,
            e.wall_seconds,
            e.rounds_per_sec,
            e.steal_attempts_per_sec,
            alloc_fields
        )
    }
    let wall = match report.repro_wall_seconds {
        Some(w) => format!("{w:.3}"),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": {},\n  \"jobs\": {},\n  \"m\": {},\n{},\n{},\n{},\n  \
         \"repro_wall_seconds\": {}\n}}\n",
        report.schema,
        report.jobs,
        report.m,
        engine("ws_steal16", &report.ws_steal16),
        engine("ws_admit", &report.ws_admit),
        engine("centralized_fifo", &report.centralized_fifo),
        wall
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_and_roundtrips() {
        std::env::set_var("PARFLOW_JOBS", "2000");
        let rep = measure(7);
        std::env::remove_var("PARFLOW_JOBS");
        assert!(rep.ws_steal16.rounds > 0);
        assert!(rep.ws_steal16.steal_attempts > 0);
        assert!(rep.ws_steal16.rounds_per_sec > 0.0);
        assert!(rep.ws_admit.rounds > 0);
        assert!(rep.centralized_fifo.rounds > 0);
        assert_eq!(rep.centralized_fifo.steal_attempts, 0);
        let json = to_json(&rep);
        for key in [
            "\"schema\": 1",
            "\"ws_steal16\"",
            "\"ws_admit\"",
            "\"centralized_fifo\"",
            "\"rounds_per_sec\"",
            "\"repro_wall_seconds\": null",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Exactly one rounds_per_sec line per engine, in declaration order
        // (scripts/bench_check reads them positionally).
        assert_eq!(json.matches("\"rounds_per_sec\"").count(), 3);
        // Alloc fields appear exactly when the probe is compiled in
        // (bench_check greps them positionally too).
        if cfg!(feature = "bench-alloc") {
            assert_eq!(json.matches("\"allocs\":").count(), 3);
            assert_eq!(json.matches("\"allocs_per_round\":").count(), 3);
        } else {
            assert!(!json.contains("\"allocs\""));
        }
    }

    #[test]
    fn observed_probes_populate_recorder() {
        use parflow_obs::AggregatingRecorder;
        std::env::set_var("PARFLOW_JOBS", "500");
        let mut rec = AggregatingRecorder::new();
        probe_observed(7, 500, &mut rec);
        std::env::remove_var("PARFLOW_JOBS");
        assert!(rec.counter_value("ws.steal_attempts", None) > 0);
        assert!(rec.counter_value("ws.worker.work_steps", Some(0)) > 0);
        assert!(rec.counter_value("central.work_steps", None) > 0);
        assert!(!rec.samples("ws.flow_ticks").is_empty());

        runtime_probe_observed(&mut rec);
        assert!(rec.counter_value("rt.tasks_executed", None) > 0);
        assert_eq!(rec.samples("rt.job_flow_ms").len(), 8);
    }
}
