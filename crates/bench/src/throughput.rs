//! Engine throughput measurement: the bench trajectory baseline.
//!
//! Wall-clock throughput (rounds/sec, steal-attempts/sec) is inherently
//! machine- and run-dependent, so it lives here at the bench layer —
//! [`parflow_core::EngineStats`] stays a purely deterministic counter set
//! that golden and differential tests can compare bit-for-bit.
//!
//! `repro --bench-json PATH` serializes a [`BenchReport`] for the committed
//! `BENCH_engine.json` baseline; `scripts/bench_check` regenerates one and
//! fails CI on a >2× throughput regression against that baseline.

use crate::experiments::{jobs_per_point, PAPER_K, PAPER_M};
use parflow_core::{
    run_priority, run_priority_observed, run_worksteal_observed, simulate_batched,
    simulate_worksteal, Fifo, ReplicaSpec, SimConfig, StealPolicy,
};
use parflow_obs::Recorder;
use parflow_workloads::{qps_for_utilization, DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Replicas in the batched seed sweep (`batched_ws` series).
pub const BATCH_B: usize = 8;

/// Steal bound for the batched sweep: unit-step steal-`k`-first is the
/// configuration whose idle probing spans the batched engine's k-burn
/// window collapses, so this series is where batching shows up.
pub const BATCH_SWEEP_K: u32 = 128;

/// Machine size of the `giant_m` probe (bitset idle/victim tracking).
pub const GIANT_M: usize = 256;

/// The `stream_ws` probe streams this many times the materialized job
/// count, so slab/cursor slots recycle through many generations.
pub const STREAM_FACTOR: u64 = 5;

/// Throughput of one engine configuration on the probe instance.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EngineThroughput {
    /// Simulated rounds advanced.
    pub rounds: u64,
    /// Steal attempts issued (0 for the centralized engine).
    pub steal_attempts: u64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// `rounds / wall_seconds`.
    pub rounds_per_sec: f64,
    /// `steal_attempts / wall_seconds` (0 for the centralized engine).
    pub steal_attempts_per_sec: f64,
    /// Heap allocation events during the run, when the probe binary was
    /// built with `--features bench-alloc`; absent otherwise.
    #[serde(default)]
    pub allocs: Option<u64>,
    /// `allocs / rounds`, the steady-state allocation pressure. Arena
    /// recycling should keep this ≈ 0.
    #[serde(default)]
    pub allocs_per_round: Option<f64>,
    /// Aggregate rounds/sec divided by the sequential engine's rounds/sec
    /// on the identical replica set. Present only for batched series.
    #[serde(default)]
    pub speedup_vs_sequential: Option<f64>,
}

impl EngineThroughput {
    fn new(rounds: u64, steal_attempts: u64, wall_seconds: f64, allocs: Option<u64>) -> Self {
        let secs = wall_seconds.max(1e-9);
        EngineThroughput {
            rounds,
            steal_attempts,
            wall_seconds,
            rounds_per_sec: rounds as f64 / secs,
            steal_attempts_per_sec: steal_attempts as f64 / secs,
            allocs,
            allocs_per_round: allocs.map(|a| a as f64 / rounds.max(1) as f64),
            speedup_vs_sequential: None,
        }
    }

    fn with_speedup(mut self, sequential_rounds_per_sec: f64) -> Self {
        self.speedup_vs_sequential =
            Some(self.rounds_per_sec / sequential_rounds_per_sec.max(1e-9));
        self
    }
}

/// Throughput of the streaming work-stealing engine on the probe spec.
///
/// Carries the same positional keys as [`EngineThroughput`] (`rounds`,
/// `rounds_per_sec`, `allocs`, `allocs_per_round`) so `scripts/bench_check`
/// can read all six engine series with one grep, plus the stream-specific
/// jobs/s rate, per-job allocation pressure, and the peak RSS the
/// O(active)-memory claim is gated on.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StreamThroughput {
    /// Jobs streamed through the engine.
    pub jobs: u64,
    /// Simulated rounds advanced.
    pub rounds: u64,
    /// Steal attempts issued.
    pub steal_attempts: u64,
    /// Wall-clock seconds for the run.
    pub wall_seconds: f64,
    /// `rounds / wall_seconds`.
    pub rounds_per_sec: f64,
    /// `jobs / wall_seconds` — the streaming headline number.
    pub jobs_per_sec: f64,
    /// Heap allocation events (bench-alloc builds only).
    #[serde(default)]
    pub allocs: Option<u64>,
    /// `allocs / rounds` — held to the same steady-state budget as the
    /// materialized engines.
    #[serde(default)]
    pub allocs_per_round: Option<f64>,
    /// `allocs / jobs` — retirement must recycle slab and cursor slots, so
    /// this stays O(1) (DAG-cache misses, samples) rather than O(n).
    #[serde(default)]
    pub allocs_per_job: Option<f64>,
    /// Process peak RSS (`VmHWM`) in kB after the stream, Linux only.
    #[serde(default)]
    pub peak_rss_kb: Option<u64>,
}

impl StreamThroughput {
    fn new(
        jobs: u64,
        rounds: u64,
        steal_attempts: u64,
        wall_seconds: f64,
        allocs: Option<u64>,
        peak_rss_kb: Option<u64>,
    ) -> Self {
        let secs = wall_seconds.max(1e-9);
        StreamThroughput {
            jobs,
            rounds,
            steal_attempts,
            wall_seconds,
            rounds_per_sec: rounds as f64 / secs,
            jobs_per_sec: jobs as f64 / secs,
            allocs,
            allocs_per_round: allocs.map(|a| a as f64 / rounds.max(1) as f64),
            allocs_per_job: allocs.map(|a| a as f64 / jobs.max(1) as f64),
            peak_rss_kb,
        }
    }
}

/// The full baseline document written by `repro --bench-json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Format version for forward compatibility.
    pub schema: u32,
    /// Jobs per probe instance (`PARFLOW_JOBS`-sensitive).
    pub jobs: usize,
    /// Processors in the probe instance.
    pub m: usize,
    /// Work-stealing engine, steal-16-first, free steals (Fig. 2 model).
    pub ws_steal16: EngineThroughput,
    /// Work-stealing engine, admit-first, free steals.
    pub ws_admit: EngineThroughput,
    /// Centralized FIFO engine (event-horizon stepping).
    pub centralized_fifo: EngineThroughput,
    /// Batched engine, `BATCH_B`-replica seed sweep of unit-step
    /// steal-`BATCH_SWEEP_K`-first; aggregate across replicas, with
    /// `speedup_vs_sequential` against per-replica `simulate_worksteal`.
    pub batched_ws: EngineThroughput,
    /// Batched engine, one replica at m = `GIANT_M` (u64-word bitset
    /// idle/victim tracking), free-steal steal-16-first at ~65 % load.
    pub giant_m: EngineThroughput,
    /// Streaming work-stealing engine: the probe spec's endless job source
    /// pulled through `run_worksteal_stream` with slab/arena retirement,
    /// O(active + m) live memory. Same spec family as `ws_steal16` but a
    /// different workload realization (the streaming source draws its RNG
    /// in a different order than `generate()`), so compare rates, not
    /// rounds.
    pub stream_ws: StreamThroughput,
    /// Wall-clock seconds of the enclosing `repro` invocation, when the
    /// caller timed one (e.g. `repro all --bench-json`).
    pub repro_wall_seconds: Option<f64>,
}

/// Run the fixed throughput probes.
///
/// One Bing instance at QPS 1000 (the Figure 2 midpoint) drives all three
/// engine configurations, so the numbers are comparable across PRs as long
/// as `PARFLOW_JOBS` and the seed stay at their defaults.
pub fn measure(seed: u64) -> BenchReport {
    let n = jobs_per_point().min(20_000);
    let m = PAPER_M;
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n, seed).generate();
    let cfg = SimConfig::new(m).with_free_steals();

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: PAPER_K }, seed);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let ws_steal16 = EngineThroughput::new(r.total_rounds, r.stats.steal_attempts, wall, allocs);

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let ws_admit = EngineThroughput::new(r.total_rounds, r.stats.steal_attempts, wall, allocs);

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let (r, _) = run_priority(&inst, &SimConfig::new(m), &Fifo);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let centralized_fifo = EngineThroughput::new(r.total_rounds, 0, wall, allocs);

    // Batched replica sweep: BATCH_B seeds of the unit-step
    // steal-BATCH_SWEEP_K config on an admission-bound burst — n short
    // sequential jobs arriving at once, so between admissions every worker
    // spends k costly probe rounds (the paper's non-free-steal regime).
    // Those spans are exactly what the batched engine's k-burn window
    // collapses. Victim selection is the round-robin scan, whose probe
    // cursor fast-forwards in closed form (`advance_scan`) — uniform
    // sampling would put an O(k) per-span RNG-burn floor under the window.
    // The sequential engine is timed on the identical replica set first,
    // so `speedup_vs_sequential` is an apples-to-apples aggregate-rounds/s
    // ratio with bit-identical schedules on both sides.
    let sweep_inst = {
        use parflow_dag::{shapes, Instance, Job};
        use std::sync::Arc;
        let dag = Arc::new(shapes::single_node(4));
        Instance::new((0..n as u32).map(|i| Job::new(i, 0, dag.clone())).collect())
    };
    let sweep_cfg = SimConfig::new(m).with_victim_scan();
    let specs: Vec<ReplicaSpec> = (0..BATCH_B as u64)
        .map(|i| {
            ReplicaSpec::new(
                sweep_cfg.clone(),
                StealPolicy::StealKFirst { k: BATCH_SWEEP_K },
                seed ^ (i + 1),
            )
        })
        .collect();
    let t = Instant::now();
    let mut seq_rounds = 0u64;
    for s in &specs {
        seq_rounds += simulate_worksteal(&sweep_inst, &s.config, s.policy, s.seed).total_rounds;
    }
    let seq_rps = seq_rounds as f64 / t.elapsed().as_secs_f64().max(1e-9);

    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let rs = simulate_batched(&sweep_inst, &specs, BATCH_B);
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let rounds: u64 = rs.iter().map(|r| r.total_rounds).sum();
    let steals: u64 = rs.iter().map(|r| r.stats.steal_attempts).sum();
    let batched_ws = EngineThroughput::new(rounds, steals, wall, allocs).with_speedup(seq_rps);

    // Giant-m probe: m = GIANT_M, load scaled to ~65 % utilization so the
    // machine is neither idle nor drowning. Two identical replicas share
    // one lane (`batch = 1`); the alloc numbers report only the second,
    // warm replica's marginal allocations. The first replica's one-time
    // lane growth (deques, bitset words, calendar buckets, arena slots —
    // O(m + jobs)) would otherwise swamp the signal, and re-running the
    // *same* seed makes the marginal count a pure leak detector: every
    // buffer already sits at its high-water mark, so any allocation the
    // warm replica performs is per-replica overhead that recycling missed.
    let giant_qps = qps_for_utilization(DistKind::Bing, GIANT_M, 0.65);
    let giant_inst = WorkloadSpec::paper_fig2(DistKind::Bing, giant_qps, n, seed).generate();
    let giant_cfg = SimConfig::new(GIANT_M).with_free_steals();
    let giant_policy = StealPolicy::StealKFirst { k: PAPER_K };
    let cold = ReplicaSpec::new(giant_cfg.clone(), giant_policy, seed);
    let warm = ReplicaSpec::new(giant_cfg, giant_policy, seed);
    let a0 = crate::alloc_probe::alloc_count();
    let single = simulate_batched(&giant_inst, std::slice::from_ref(&cold), 1);
    let a1 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let rs = simulate_batched(&giant_inst, &[cold, warm], 1);
    let wall = t.elapsed().as_secs_f64();
    let a2 = crate::alloc_probe::alloc_count();
    let cold_allocs = a1.zip(a0).map(|(a, b)| a - b);
    let warm_allocs = a2
        .zip(a1)
        .map(|(a, b)| (a - b).saturating_sub(cold_allocs.unwrap_or(0)));
    debug_assert_eq!(single[0], rs[0]);
    let warm_rounds = rs[1].total_rounds;
    let warm_steals = rs[1].stats.steal_attempts;
    // Wall time covers both replicas in the pair; halve the aggregate by
    // reporting the warm replica's rounds against half the pair's wall.
    let giant_m = EngineThroughput::new(warm_rounds, warm_steals, wall / 2.0, warm_allocs);

    // Streaming probe: the same Bing QPS-1000 spec pulled as an endless
    // source through the streaming engine. `STREAM_FACTOR`× the
    // materialized job count exercises steady-state retirement (slab and
    // cursor slots cycling many times over) without meaningfully moving CI
    // wall time.
    let stream_jobs = (n as u64) * STREAM_FACTOR;
    let stream_spec = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n, seed);
    let a0 = crate::alloc_probe::alloc_count();
    let t = Instant::now();
    let run = crate::stream::run_stream_ws(
        &stream_spec,
        &cfg,
        StealPolicy::StealKFirst { k: PAPER_K },
        seed,
        stream_jobs,
    )
    .expect("probe spec is fault-free and sorted");
    let wall = t.elapsed().as_secs_f64();
    let allocs = crate::alloc_probe::alloc_count()
        .zip(a0)
        .map(|(a, b)| a - b);
    let stream_ws = StreamThroughput::new(
        stream_jobs,
        run.summary.total_rounds,
        run.summary.stats.steal_attempts,
        wall,
        allocs,
        crate::stream::peak_rss_kb(),
    );

    BenchReport {
        schema: 3,
        jobs: n,
        m,
        ws_steal16,
        ws_admit,
        centralized_fifo,
        batched_ws,
        giant_m,
        stream_ws,
        repro_wall_seconds: None,
    }
}

/// Run the throughput probe instance once through the *observed* engine
/// entry points, feeding per-worker steal/admission counters and flow-time
/// samples into `rec`. Backs `repro --obs-json`: the report then contains
/// `ws.worker.*[i]` counters (u64-exact, no saturation) next to the
/// centralized engine's horizon/quiescence telemetry.
pub fn probe_observed(seed: u64, jobs_cap: usize, rec: &mut dyn Recorder) {
    let n = jobs_per_point().min(jobs_cap);
    let m = PAPER_M;
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n, seed).generate();
    let cfg = SimConfig::new(m).with_free_steals();
    let _ = run_worksteal_observed(
        &inst,
        &cfg,
        StealPolicy::StealKFirst { k: PAPER_K },
        seed,
        rec,
    );
    let _ = run_priority_observed(&inst, &SimConfig::new(m), &Fifo, rec);
}

/// Run a small burst on the *real* threaded executor and feed its
/// per-worker stats and wall-clock latency histogram into `rec`. The
/// second half of the `repro --obs-json` epilogue.
pub fn runtime_probe_observed(rec: &mut dyn Recorder) {
    use parflow_runtime::{run_workload, JobSpec, RtPolicy, RuntimeConfig};
    use std::time::Duration;
    let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 }).with_seed(7);
    let wl: Vec<_> = (0..8u64)
        .map(|i| (Duration::from_micros(50 * i), JobSpec::split(20_000, 4)))
        .collect();
    let r = run_workload(&cfg, &wl);
    r.observe_into(rec);
}

/// Serialize `report` to pretty JSON with a trailing newline.
///
/// Hand-rolled: the offline `serde_json` stub cannot serialize, and this
/// fixed schema is trivial to emit directly. The derives stay on the types
/// so real `serde_json` round-trips work when the workspace is built with
/// the genuine dependency.
pub fn to_json(report: &BenchReport) -> String {
    fn engine(name: &str, e: &EngineThroughput) -> String {
        let alloc_fields = match (e.allocs, e.allocs_per_round) {
            (Some(a), Some(apr)) => {
                format!(",\n    \"allocs\": {a},\n    \"allocs_per_round\": {apr:.4}")
            }
            _ => String::new(),
        };
        let speedup_field = match e.speedup_vs_sequential {
            Some(s) => format!(",\n    \"speedup_vs_sequential\": {s:.2}"),
            None => String::new(),
        };
        format!(
            "  \"{name}\": {{\n    \"rounds\": {},\n    \"steal_attempts\": {},\n    \
             \"wall_seconds\": {:.6},\n    \"rounds_per_sec\": {:.1},\n    \
             \"steal_attempts_per_sec\": {:.1}{}{}\n  }}",
            e.rounds,
            e.steal_attempts,
            e.wall_seconds,
            e.rounds_per_sec,
            e.steal_attempts_per_sec,
            alloc_fields,
            speedup_field
        )
    }
    fn stream(name: &str, s: &StreamThroughput) -> String {
        let alloc_fields = match (s.allocs, s.allocs_per_round, s.allocs_per_job) {
            (Some(a), Some(apr), Some(apj)) => format!(
                ",\n    \"allocs\": {a},\n    \"allocs_per_round\": {apr:.4},\n    \
                 \"allocs_per_job\": {apj:.4}"
            ),
            _ => String::new(),
        };
        let rss_field = match s.peak_rss_kb {
            Some(kb) => format!(",\n    \"peak_rss_kb\": {kb}"),
            None => String::new(),
        };
        format!(
            "  \"{name}\": {{\n    \"jobs\": {},\n    \"rounds\": {},\n    \
             \"steal_attempts\": {},\n    \"wall_seconds\": {:.6},\n    \
             \"rounds_per_sec\": {:.1},\n    \"jobs_per_sec\": {:.1}{}{}\n  }}",
            s.jobs,
            s.rounds,
            s.steal_attempts,
            s.wall_seconds,
            s.rounds_per_sec,
            s.jobs_per_sec,
            alloc_fields,
            rss_field
        )
    }
    let wall = match report.repro_wall_seconds {
        Some(w) => format!("{w:.3}"),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": {},\n  \"jobs\": {},\n  \"m\": {},\n{},\n{},\n{},\n{},\n{},\n{},\n  \
         \"repro_wall_seconds\": {}\n}}\n",
        report.schema,
        report.jobs,
        report.m,
        engine("ws_steal16", &report.ws_steal16),
        engine("ws_admit", &report.ws_admit),
        engine("centralized_fifo", &report.centralized_fifo),
        engine("batched_ws", &report.batched_ws),
        engine("giant_m", &report.giant_m),
        stream("stream_ws", &report.stream_ws),
        wall
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_and_roundtrips() {
        std::env::set_var("PARFLOW_JOBS", "2000");
        let rep = measure(7);
        std::env::remove_var("PARFLOW_JOBS");
        assert!(rep.ws_steal16.rounds > 0);
        assert!(rep.ws_steal16.steal_attempts > 0);
        assert!(rep.ws_steal16.rounds_per_sec > 0.0);
        assert!(rep.ws_admit.rounds > 0);
        assert!(rep.centralized_fifo.rounds > 0);
        assert_eq!(rep.centralized_fifo.steal_attempts, 0);
        // The batched sweep aggregates BATCH_B replicas of one instance:
        // every replica advances at least as far as the last arrival.
        assert!(rep.batched_ws.rounds >= BATCH_B as u64);
        assert!(rep.batched_ws.speedup_vs_sequential.unwrap() > 0.0);
        assert!(rep.giant_m.rounds > 0);
        assert!(rep.giant_m.speedup_vs_sequential.is_none());
        // The streaming probe pulls STREAM_FACTOR× the materialized count.
        assert_eq!(rep.stream_ws.jobs, rep.jobs as u64 * STREAM_FACTOR);
        assert!(rep.stream_ws.rounds > 0);
        assert!(rep.stream_ws.jobs_per_sec > 0.0);
        let json = to_json(&rep);
        for key in [
            "\"schema\": 3",
            "\"ws_steal16\"",
            "\"ws_admit\"",
            "\"centralized_fifo\"",
            "\"batched_ws\"",
            "\"giant_m\"",
            "\"stream_ws\"",
            "\"rounds_per_sec\"",
            "\"jobs_per_sec\"",
            "\"speedup_vs_sequential\"",
            "\"repro_wall_seconds\": null",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Exactly one rounds_per_sec line per engine, in declaration order
        // (scripts/bench_check reads them positionally; stream_ws is last).
        assert_eq!(json.matches("\"rounds_per_sec\"").count(), 6);
        // Only the streaming series carries jobs/s.
        assert_eq!(json.matches("\"jobs_per_sec\"").count(), 1);
        // Only the batched sweep carries a sequential-baseline ratio.
        assert_eq!(json.matches("\"speedup_vs_sequential\"").count(), 1);
        // Alloc fields appear exactly when the probe is compiled in
        // (bench_check greps them positionally too).
        if cfg!(feature = "bench-alloc") {
            assert_eq!(json.matches("\"allocs\":").count(), 6);
            assert_eq!(json.matches("\"allocs_per_round\":").count(), 6);
            assert_eq!(json.matches("\"allocs_per_job\":").count(), 1);
        } else {
            assert!(!json.contains("\"allocs\""));
        }
        // Peak RSS rides along on Linux (the platform CI gates on).
        if cfg!(target_os = "linux") {
            assert!(json.contains("\"peak_rss_kb\""));
        }
    }

    #[test]
    fn observed_probes_populate_recorder() {
        use parflow_obs::AggregatingRecorder;
        std::env::set_var("PARFLOW_JOBS", "500");
        let mut rec = AggregatingRecorder::new();
        probe_observed(7, 500, &mut rec);
        std::env::remove_var("PARFLOW_JOBS");
        assert!(rec.counter_value("ws.steal_attempts", None) > 0);
        assert!(rec.counter_value("ws.worker.work_steps", Some(0)) > 0);
        assert!(rec.counter_value("central.work_steps", None) > 0);
        assert!(!rec.samples("ws.flow_ticks").is_empty());

        runtime_probe_observed(&mut rec);
        assert!(rec.counter_value("rt.tasks_executed", None) > 0);
        assert_eq!(rec.samples("rt.job_flow_ms").len(), 8);
    }
}
