//! Experiment output plumbing: print tables and optionally persist them as
//! CSV so figures can be re-plotted without re-running simulations.

use parflow_metrics::Table;
use std::io;
use std::path::{Path, PathBuf};

/// Prints experiment tables and, when a directory is configured, writes
/// each one to `<dir>/<name>.csv`.
#[derive(Clone, Debug, Default)]
pub struct Reporter {
    csv_dir: Option<PathBuf>,
}

impl Reporter {
    /// A reporter that only prints.
    pub fn stdout_only() -> Self {
        Reporter::default()
    }

    /// A reporter that also writes CSVs into `dir` (created if missing).
    pub fn with_csv_dir<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(Reporter {
            csv_dir: Some(dir.as_ref().to_path_buf()),
        })
    }

    /// Whether CSV persistence is enabled.
    pub fn writes_csv(&self) -> bool {
        self.csv_dir.is_some()
    }

    /// Print the table (rendered) and persist it if configured. Returns the
    /// CSV path when one was written.
    pub fn emit(&self, name: &str, table: &Table) -> io::Result<Option<PathBuf>> {
        println!("{}", table.render());
        if let Some(dir) = &self.csv_dir {
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, table.to_csv())?;
            println!("(csv written to {})", path.display());
            return Ok(Some(path));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        t.row(["3", "4"]);
        t
    }

    #[test]
    fn stdout_only_writes_nothing() {
        let r = Reporter::stdout_only();
        assert!(!r.writes_csv());
        assert_eq!(r.emit("x", &sample_table()).unwrap(), None);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("parflow_reporter_test");
        let r = Reporter::with_csv_dir(&dir).unwrap();
        assert!(r.writes_csv());
        let path = r.emit("sample", &sample_table()).unwrap().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn nested_dir_created() {
        let dir = std::env::temp_dir().join("parflow_reporter_test/nested/deep");
        let r = Reporter::with_csv_dir(&dir).unwrap();
        let path = r.emit("t", &sample_table()).unwrap().unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).unwrap();
    }
}
