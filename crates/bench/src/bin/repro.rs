//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p parflow-bench --bin repro -- [EXPERIMENT...]
//! ```
//!
//! Experiments: `fig2-bing`, `fig2-finance`, `fig2-lognormal`, `fig3`,
//! `lower-bound`, `theory-fifo`, `theory-ws`, `theory-bwf`, `steal-k`,
//! `intervals`, `victim-ablation`, `equi`, `norms`, `grain`, `burst`,
//! `backlog`, `lemmas`, `scaling`, `variance`, `steal-amount`,
//! `weighted-ws`, `fault-resilience`, `serve-soak`, or `all` (default).
//!
//! `repro sweep --grid <spec|smoke|phase> --out store.jsonl [--resume]`
//! runs the mega-sweep harness (cluster → prune → fan-out → aggregate)
//! instead of the named experiments; see `parflow_bench::sweep`.
//!
//! Flags: `--csv DIR` persists every table as CSV; `--list` enumerates
//! experiment names; `--bench-json PATH` appends an engine-throughput
//! measurement and writes the [`parflow_bench::throughput::BenchReport`]
//! JSON (the `BENCH_engine.json` trajectory baseline); `--obs-json PATH`
//! times every experiment as an observability phase, runs instrumented
//! engine + runtime probes, and writes the `parflow-obs` run report
//! (counters, per-worker telemetry, latency histograms, phase wall times).
//! Environment: `PARFLOW_JOBS=100000` for paper-scale runs, `PARFLOW_SEED`
//! to reseed, `PARFLOW_THREADS` to size the experiment-point thread pool.

use parflow_bench::experiments::{
    backlog, base_seed, burst, equi_ablation, fault_resilience, fig2, fig3, grain, intervals,
    jobs_per_point, lemma_audit, lower_bound, norms, scaling, serve_soak, steal_amount, steal_k,
    theory_bwf, theory_fifo, theory_ws, variance, victim_ablation, weighted_ws,
};
use parflow_bench::{throughput, Reporter};
use parflow_obs::{AggregatingRecorder, Recorder};
use parflow_workloads::DistKind;
use std::cell::RefCell;

/// Every experiment name `repro` understands, in run order.
const EXPERIMENTS: &[&str] = &[
    "fig2-bing",
    "fig2-finance",
    "fig2-lognormal",
    "fig3",
    "lower-bound",
    "theory-fifo",
    "theory-ws",
    "theory-bwf",
    "steal-k",
    "victim-ablation",
    "equi",
    "norms",
    "grain",
    "burst",
    "scaling",
    "variance",
    "steal-amount",
    "weighted-ws",
    "fault-resilience",
    "serve-soak",
    "lemmas",
    "backlog",
    "intervals",
];

fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro [--csv DIR] [--bench-json PATH] [--obs-json PATH] [--stream] [--jobs N] \
         [--list] [EXPERIMENT...]"
    );
    std::process::exit(2);
}

/// Times one experiment as an observability phase: `SpanBegin` on
/// construction, `SpanEnd` on drop, so early exits still close the span.
/// A `None` recorder makes the guard free.
struct PhaseGuard<'a> {
    rec: Option<&'a RefCell<AggregatingRecorder>>,
    name: &'static str,
}

impl<'a> PhaseGuard<'a> {
    fn begin(rec: Option<&'a RefCell<AggregatingRecorder>>, name: &'static str) -> Self {
        if let Some(r) = rec {
            r.borrow_mut().span_begin(name);
        }
        PhaseGuard { rec, name }
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(r) = self.rec {
            r.borrow_mut().span_end(self.name);
        }
    }
}

fn banner(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn run_fig2(dist: DistKind, panel: &str, reporter: &Reporter) {
    banner(&format!(
        "Figure 2({panel}): max flow time vs QPS — {} workload (m=16, n={})",
        dist.name(),
        jobs_per_point()
    ));
    let points = fig2::run(dist, base_seed());
    reporter
        .emit(
            &format!("fig2_{}", dist.name()),
            &fig2::table(dist, &points),
        )
        .expect("csv write");
    println!("expected shape: OPT <= steal-16-first << admit-first, gap grows with QPS");
}

fn main() {
    let started = std::time::Instant::now();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // `repro sweep …` is a subcommand with its own flag grammar (boolean
    // `--resume`, grid specs); dispatch before experiment-name parsing.
    if raw.first().map(String::as_str) == Some("sweep") {
        match parflow_bench::sweep::cli_main(&raw[1..]) {
            Ok(report) => {
                println!("{report}");
                return;
            }
            Err(msg) => {
                eprintln!("repro sweep: {msg}");
                std::process::exit(2);
            }
        }
    }
    // Extract flags before treating the rest as experiment names.
    let mut args: Vec<String> = Vec::new();
    let mut reporter = Reporter::stdout_only();
    let mut bench_json: Option<String> = None;
    let mut obs_json: Option<String> = None;
    let mut stream_mode = false;
    let mut jobs_override: Option<u64> = None;
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stream" => {
                stream_mode = true;
            }
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a count argument"));
                jobs_override = Some(v.parse().unwrap_or_else(|_| {
                    usage_error(&format!("--jobs needs a non-negative integer, got `{v}`"))
                }));
            }
            "--csv" => {
                let dir = it
                    .next()
                    .unwrap_or_else(|| usage_error("--csv needs a directory argument"));
                reporter = Reporter::with_csv_dir(&dir).unwrap_or_else(|e| {
                    usage_error(&format!("cannot create csv directory `{dir}`: {e}"))
                });
            }
            "--bench-json" => {
                bench_json = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--bench-json needs a file path argument")),
                );
            }
            "--obs-json" => {
                obs_json = Some(
                    it.next()
                        .unwrap_or_else(|| usage_error("--obs-json needs a file path argument")),
                );
            }
            "--list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            flag if flag.starts_with("--") => {
                usage_error(&format!("unknown flag `{flag}`"));
            }
            name if name != "all" && !EXPERIMENTS.contains(&name) => {
                usage_error(&format!(
                    "unknown experiment `{name}` (run `repro --list` for names)"
                ));
            }
            _ => args.push(a),
        }
    }
    // `--stream` with no experiment names runs only the streaming
    // trajectory (at `--jobs 10000000` the full suite would otherwise ride
    // along); with names it augments them (serve-soak honors `--jobs`).
    let stream_only = stream_mode && args.is_empty();
    let want = |name: &str| {
        !stream_only && (args.is_empty() || args.iter().any(|a| a == name || a == "all"))
    };
    let seed = base_seed();
    // One shared recorder behind `--obs-json`; each experiment block opens
    // a drop-guarded phase span, so the report's `phases` section is a
    // per-experiment wall-time breakdown of this invocation.
    let obs = obs_json
        .as_ref()
        .map(|_| RefCell::new(AggregatingRecorder::new()));

    if want("fig2-bing") {
        let _p = PhaseGuard::begin(obs.as_ref(), "fig2-bing");
        run_fig2(DistKind::Bing, "a", &reporter);
    }
    if want("fig2-finance") {
        let _p = PhaseGuard::begin(obs.as_ref(), "fig2-finance");
        run_fig2(DistKind::Finance, "b", &reporter);
    }
    if want("fig2-lognormal") {
        let _p = PhaseGuard::begin(obs.as_ref(), "fig2-lognormal");
        run_fig2(DistKind::LogNormal, "c", &reporter);
    }
    if want("fig3") {
        let _p = PhaseGuard::begin(obs.as_ref(), "fig3");
        banner("Figure 3: request work distributions");
        println!("{}", fig3::render(200_000, seed));
    }
    if want("lower-bound") {
        let _p = PhaseGuard::begin(obs.as_ref(), "lower-bound");
        banner("Lemma 5.1: work stealing is Omega(log n)-competitive");
        let pts = lower_bound::run(&lower_bound::default_ms(), 200_000, seed);
        reporter
            .emit("lower_bound", &lower_bound::table(&pts))
            .expect("csv write");
        println!("expected shape: WS max flow grows ~m/10 with m = Theta(log n); FIFO stays ~2");
    }
    if want("theory-fifo") {
        let _p = PhaseGuard::begin(obs.as_ref(), "theory-fifo");
        banner("Theorem 3.1: FIFO with (1+eps) speed is (3/eps)-competitive");
        let pts = theory_fifo::run(jobs_per_point().min(20_000), seed);
        reporter
            .emit("theory_fifo", &theory_fifo::table(&pts))
            .expect("csv write");
    }
    if want("theory-ws") {
        let _p = PhaseGuard::begin(obs.as_ref(), "theory-ws");
        banner("Theorem 4.1: steal-k-first with (k+1+eps) speed, normalized flow");
        let pts = theory_ws::run(&[0, 2, 16], &[2_000, 8_000, 32_000], seed);
        reporter
            .emit("theory_ws", &theory_ws::table(&pts))
            .expect("csv write");
    }
    if want("theory-bwf") {
        let _p = PhaseGuard::begin(obs.as_ref(), "theory-bwf");
        banner("Theorem 7.1: BWF with (1+eps) speed is (3/eps^2)-competitive (weighted)");
        let pts = theory_bwf::run(jobs_per_point().min(20_000), 1_000, seed);
        reporter
            .emit("theory_bwf", &theory_bwf::table(&pts))
            .expect("csv write");
    }
    if want("steal-k") {
        let _p = PhaseGuard::begin(obs.as_ref(), "steal-k");
        banner("Ablation: steal-k-first parameter sweep (Bing workload)");
        let pts = steal_k::run(&steal_k::default_ks(), &[800.0, 1000.0, 1200.0], seed);
        reporter
            .emit("steal_k", &steal_k::table(&pts))
            .expect("csv write");
        println!("expected shape: larger k approaches OPT; k=0 degrades at high QPS");
    }
    if want("victim-ablation") {
        let _p = PhaseGuard::begin(obs.as_ref(), "victim-ablation");
        banner("Ablation: victim selection vs the Lemma 5.1 lower bound");
        let pts = victim_ablation::run(&[20, 40, 60, 80], 150_000, seed);
        reporter
            .emit("victim_ablation", &victim_ablation::table(&pts))
            .expect("csv write");
        println!("expected shape: random victims degrade ~m/10; scanning collapses to O(1)");
    }
    if want("equi") {
        let _p = PhaseGuard::begin(obs.as_ref(), "equi");
        banner("Ablation: EQUI (processor sharing) vs FIFO for max flow");
        let pts = equi_ablation::run(&[800.0, 1000.0, 1200.0], jobs_per_point().min(20_000), seed);
        reporter
            .emit("equi_ablation", &equi_ablation::table(&pts))
            .expect("csv write");
        println!("expected shape: EQUI's max-flow gap to FIFO grows with load");
    }
    if want("norms") {
        let _p = PhaseGuard::begin(obs.as_ref(), "norms");
        banner("Extension: l_k norms of flow time and maximum stretch");
        let pts = norms::run(jobs_per_point().min(20_000), seed);
        reporter
            .emit("norms", &norms::table(&pts))
            .expect("csv write");
    }
    if want("grain") {
        let _p = PhaseGuard::begin(obs.as_ref(), "grain");
        banner("Ablation: parallel-for chunk granularity (steal-16-first)");
        let pts = grain::run(
            &grain::default_grains(),
            1100.0,
            jobs_per_point().min(20_000),
            seed,
        );
        reporter
            .emit("grain", &grain::table(&pts))
            .expect("csv write");
        println!("expected shape: a U-curve — too-fine grains flood deques and delay admissions,");
        println!("too-coarse grains raise span; the sweet spot sits near ~1-3 ms chunks");
    }
    if want("burst") {
        let _p = PhaseGuard::begin(obs.as_ref(), "burst");
        banner("Robustness: bursty arrivals at fixed average load");
        let pts = burst::run(&burst::default_bursts(), jobs_per_point().min(20_000), seed);
        reporter
            .emit("burst", &burst::table(&pts))
            .expect("csv write");
        println!("expected shape: everyone degrades with burst size; admit-first fastest");
    }
    if want("scaling") {
        let _p = PhaseGuard::begin(obs.as_ref(), "scaling");
        banner("Extension: machine-size scaling at fixed 65% utilization (Bing)");
        let pts = scaling::run(&scaling::default_ms(), jobs_per_point().min(20_000), seed);
        reporter
            .emit("scaling", &scaling::table(&pts))
            .expect("csv write");
        println!("expected shape: steal-16 tracks OPT at every m; admit-first gap persists");
    }
    if want("variance") {
        let _p = PhaseGuard::begin(obs.as_ref(), "variance");
        banner("Extension: max-flow variance across seeds (w.h.p. in practice)");
        let pts = variance::run(1100.0, jobs_per_point().min(20_000), 10, seed);
        reporter
            .emit("variance", &variance::table(&pts))
            .expect("csv write");
    }
    if want("steal-amount") {
        let _p = PhaseGuard::begin(obs.as_ref(), "steal-amount");
        banner("Ablation: steal-one vs steal-half transfer granularity (unit-cost steals)");
        let pts = steal_amount::run(&[800.0, 1000.0, 1200.0], jobs_per_point().min(20_000), seed);
        reporter
            .emit("steal_amount", &steal_amount::table(&pts))
            .expect("csv write");
    }
    if want("weighted-ws") {
        let _p = PhaseGuard::begin(obs.as_ref(), "weighted-ws");
        banner("Extension: distributed BWF (weight-ordered admission) vs centralized BWF");
        let pts = weighted_ws::run(&[800.0, 1000.0, 1200.0], jobs_per_point().min(20_000), seed);
        reporter
            .emit("weighted_ws", &weighted_ws::table(&pts))
            .expect("csv write");
        println!("expected shape: weighted admission helps in backlog episodes, but");
        println!("preemptive BWF wins consistently; see module docs for the analysis");
    }
    if want("fault-resilience") {
        let _p = PhaseGuard::begin(obs.as_ref(), "fault-resilience");
        banner("Robustness: admit-first vs steal-16-first under injected faults (QPS 1000)");
        let pts = fault_resilience::run(&fault_resilience::default_levels(), 1000.0, seed);
        reporter
            .emit("fault_resilience", &fault_resilience::table(&pts))
            .expect("csv write");
        println!("expected shape: both policies degrade smoothly as workers crash/slow;");
        println!(
            "crashed deques are reinjected, so no completed job is lost — only panics fail jobs"
        );
    }
    if want("serve-soak") {
        let _p = PhaseGuard::begin(obs.as_ref(), "serve-soak");
        banner("Robustness: streaming admission service under sustained QPS (SLO soak)");
        // `--jobs` lifts the default cap: the supervisor streams its
        // source, so a 10M-job soak is wall-time-bound, not memory-bound.
        let soak_jobs = jobs_override
            .map(|j| j as usize)
            .unwrap_or_else(|| jobs_per_point().min(5_000));
        let pts = serve_soak::run_sized(&serve_soak::default_utils(), seed, soak_jobs);
        reporter
            .emit("serve_soak", &serve_soak::table(&pts))
            .expect("csv write");
        println!("expected shape: shed/reject rates rise past utilization 1.0, while the");
        println!("max virtual flow over admitted jobs stays under the SLO at every level");
    }
    if want("lemmas") {
        let _p = PhaseGuard::begin(obs.as_ref(), "lemmas");
        banner("Lemma audit: proof-level quantities measured on real schedules");
        let a = lemma_audit::run(jobs_per_point().min(10_000), seed);
        reporter
            .emit("lemma_audit", &lemma_audit::table(&a))
            .expect("csv write");
    }
    if want("backlog") {
        let _p = PhaseGuard::begin(obs.as_ref(), "backlog");
        banner("Diagnostic: backlog dynamics, admit-first vs steal-16-first (QPS 1200)");
        let pts = backlog::run(1200.0, jobs_per_point().min(20_000), seed);
        reporter
            .emit("backlog", &backlog::table(&pts))
            .expect("csv write");
        println!("mechanism: admit-first opens jobs eagerly (high live count, slow each);");
        println!("steal-16-first queues them and drains admitted jobs with parallelism");
    }
    if want("intervals") {
        let _p = PhaseGuard::begin(obs.as_ref(), "intervals");
        banner("Figure 1: interval decomposition of the max-flow job's trace");
        match intervals::run(jobs_per_point().min(20_000), seed, (1, 10)) {
            Some(a) => {
                println!(
                    "max-flow job J_{} : r_i={:.1} c_i={:.1} F_i={:.1}, beta={}, t'={:.1}",
                    a.job,
                    a.arrival.to_f64(),
                    a.completion.to_f64(),
                    a.flow.to_f64(),
                    a.beta(),
                    a.t_prime.to_f64()
                );
                reporter
                    .emit("intervals", &intervals::table(&a))
                    .expect("csv write");
            }
            None => println!("empty instance"),
        }
    }

    if stream_mode {
        let _p = PhaseGuard::begin(obs.as_ref(), "stream-trajectory");
        let jobs = jobs_override.unwrap_or(1_000_000);
        banner(&format!(
            "Streaming trajectory (--stream): {jobs} Bing QPS-1000 jobs, O(active) memory"
        ));
        let spec = parflow_workloads::WorkloadSpec::paper_fig2(
            DistKind::Bing,
            1000.0,
            jobs_per_point(),
            seed,
        );
        let cfg = parflow_core::SimConfig::new(16).with_free_steals();
        let t = std::time::Instant::now();
        let run = parflow_bench::stream::run_stream_ws(
            &spec,
            &cfg,
            parflow_core::StealPolicy::StealKFirst { k: 16 },
            seed,
            jobs,
        )
        .unwrap_or_else(|e| usage_error(&format!("stream failed: {e}")));
        let wall = t.elapsed().as_secs_f64();
        let to_ms = 1000.0 / parflow_workloads::TICKS_PER_SECOND;
        println!(
            "streamed {} jobs in {:.1}s ({:.0} jobs/s, {:.2e} rounds/s)",
            run.summary.jobs,
            wall,
            run.summary.jobs as f64 / wall.max(1e-9),
            run.summary.total_rounds as f64 / wall.max(1e-9),
        );
        println!(
            "max flow {:.1} ms, mean {:.1} ms, ~p99 {:.1} ms ({} NaN excluded)",
            run.summary.max_flow.to_f64() * to_ms,
            run.flows.mean().unwrap_or(0.0) * to_ms,
            run.flows.quantile(0.99).unwrap_or(0.0) * to_ms,
            run.flows.nan(),
        );
        println!(
            "live OPT bound {:.1} ms -> ratio {:.2}",
            run.opt.combined_lower_bound().to_f64() * to_ms,
            run.competitive_ratio().unwrap_or(0.0),
        );
        println!(
            "retirement: {} retired, {} live high-water, {} slab slots \
             (reuse {:.1}%), {} cursor slots",
            run.summary.retire.jobs_retired,
            run.summary.retire.live_jobs_high_water,
            run.summary.retire.slab_slots,
            run.summary.retire.slab_reuse_ratio().unwrap_or(0.0) * 100.0,
            run.summary.retire.cursor_slots,
        );
        if let Some(kb) = parflow_bench::stream::peak_rss_kb() {
            println!("peak RSS {:.1} MB (VmHWM)", kb as f64 / 1024.0);
        }
    }

    if let Some(path) = bench_json {
        banner("Engine throughput baseline (--bench-json)");
        let mut report = throughput::measure(seed);
        report.repro_wall_seconds = Some(started.elapsed().as_secs_f64());
        std::fs::write(&path, throughput::to_json(&report))
            .unwrap_or_else(|e| usage_error(&format!("cannot write bench json `{path}`: {e}")));
        println!(
            "ws steal-16: {:.2e} rounds/s, {:.2e} steal-attempts/s",
            report.ws_steal16.rounds_per_sec, report.ws_steal16.steal_attempts_per_sec
        );
        println!(
            "ws admit-first: {:.2e} rounds/s; centralized FIFO: {:.2e} rounds/s",
            report.ws_admit.rounds_per_sec, report.centralized_fifo.rounds_per_sec
        );
        println!("(bench json written to {path})");
    }

    if let (Some(path), Some(cell)) = (obs_json, obs.as_ref()) {
        banner("Observability report (--obs-json)");
        {
            let _p = PhaseGuard::begin(obs.as_ref(), "obs.engine_probe");
            let mut rec = cell.borrow_mut();
            throughput::probe_observed(seed, 2_000, &mut *rec);
        }
        {
            let _p = PhaseGuard::begin(obs.as_ref(), "obs.runtime_probe");
            let mut rec = cell.borrow_mut();
            throughput::runtime_probe_observed(&mut *rec);
        }
        cell.borrow_mut()
            .gauge("repro.wall_seconds", started.elapsed().as_secs_f64());
        let report = cell.borrow().report();
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| usage_error(&format!("cannot write obs json `{path}`: {e}")));
        println!(
            "{} counters, {} gauges, {} histograms, {} phases",
            report.counters.len(),
            report.gauges.len(),
            report.histograms.len(),
            report.phases.len()
        );
        println!(
            "engine probe: {} steal attempts, {} admissions (u64-exact counters)",
            cell.borrow().counter_value("ws.steal_attempts", None),
            cell.borrow().counter_value("ws.admissions", None),
        );
        println!("(obs json written to {path})");
    }
}
