//! Bench-only allocation counting (`--features bench-alloc`).
//!
//! Wraps the system allocator in a counting shim installed as the global
//! allocator, so the throughput probe can report heap allocations per
//! engine run alongside rounds/sec. Compiled out entirely (and
//! [`alloc_count`] returns `None`) unless the `bench-alloc` feature is on:
//! production and test builds keep the untouched system allocator.
//!
//! The counter tracks allocation *events* (`alloc` + `realloc` calls), not
//! bytes: the arena work in PR 4 is about eliminating per-job/per-round
//! allocator round-trips, and an event count is the direct measure of
//! that. Counting uses one relaxed atomic increment per event — cheap
//! enough that throughput numbers from a `bench-alloc` build stay within
//! normal run-to-run noise of an unshimmed build.

// This is the only module in the workspace allowed to contain `unsafe`
// (every other crate is `#![forbid(unsafe_code)]`); inside it, every
// unsafe operation must sit in an explicit `unsafe {}` block with its own
// SAFETY justification — an `unsafe fn` signature alone is not enough.
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(feature = "bench-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // SAFETY: defers every operation to `System`, which upholds the
    // GlobalAlloc contract; the counter side effect does not allocate
    // (a relaxed atomic increment), so no reentrancy into the allocator.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `layout` is forwarded unchanged from our caller, who
            // guarantees it is non-zero-sized per the GlobalAlloc contract.
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            // SAFETY: `ptr`/`layout` are forwarded unchanged; our caller
            // guarantees `ptr` came from this allocator with this layout,
            // and every path of ours returns `System`-owned blocks.
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            // SAFETY: arguments forwarded unchanged under the same caller
            // contract; the block being resized is `System`-owned.
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn alloc_count() -> Option<u64> {
        Some(ALLOC_EVENTS.load(Ordering::Relaxed))
    }
}

#[cfg(not(feature = "bench-alloc"))]
mod imp {
    pub fn alloc_count() -> Option<u64> {
        None
    }
}

/// Allocation events (alloc + realloc calls) observed process-wide so far,
/// or `None` when the `bench-alloc` feature is off. Callers snapshot
/// before/after a region and subtract; the count is process-wide, so keep
/// other threads quiet across the probed region for meaningful deltas.
pub fn alloc_count() -> Option<u64> {
    imp::alloc_count()
}

#[cfg(all(test, feature = "bench-alloc"))]
mod tests {
    use super::alloc_count;

    #[test]
    fn counter_advances_on_allocation() {
        let before = alloc_count().unwrap();
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
        drop(v);
        let after = alloc_count().unwrap();
        assert!(after > before, "allocation events must be counted");
    }
}

#[cfg(all(test, not(feature = "bench-alloc")))]
mod tests {
    use super::alloc_count;

    #[test]
    fn disabled_probe_reports_none() {
        assert!(alloc_count().is_none());
    }
}
