//! Streaming bench adapter: [`WorkloadSpec`] → core [`JobStream`], peak-RSS
//! probing, and high-level streaming runners for exec/serve-soak/sweep.
//!
//! The workloads crate's [`JobSource`] yields `(arrival, work)` scalars;
//! the simulation core wants DAGs. [`SpecJobStream`] bridges them, caching
//! built DAGs by work size (jobs of equal work share one `Arc<JobDag>`, so
//! a 10M-job stream allocates O(distinct work values) DAGs, not O(n)).
//!
//! Note the stream layout caveat from [`JobSource`]: its RNG draw order
//! deliberately differs from [`WorkloadSpec::generate`], so a streaming
//! run over a spec sees a different workload *realization* than the
//! materialized run of the same spec — same distribution, different
//! sample. Bit-identity claims are about [`InstanceReplay`] of a fixed
//! instance, which the differential tests use.

use parflow_core::{
    run_priority_stream_observed, run_worksteal_stream_observed, Fifo, JobStream, OptTap,
    OptTracker, SimConfig, StealPolicy, StreamError, StreamSummary, StreamedJob,
};
use parflow_dag::JobDag;
use parflow_metrics::StreamingFlowStats;
use parflow_obs::{NullRecorder, Recorder};
use parflow_workloads::{JobSource, ShapeKind, WorkloadSpec};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default percentile-histogram range for streaming flow stats: 1 ms bins
/// up to 10 s (flows above saturate into the top bin; max stays exact).
pub const FLOW_HIST_HI_TICKS: f64 = 100_000.0;
/// Bin count matching [`FLOW_HIST_HI_TICKS`] at 10-tick (1 ms) resolution.
pub const FLOW_HIST_BINS: usize = 10_000;

/// DAG-cache capacity: distinct work values seen before the cache resets.
/// Work distributions quantize to ticks, so real workloads saturate a few
/// thousand distinct values; the reset bounds worst-case memory for
/// adversarial continuous distributions.
const DAG_CACHE_CAP: usize = 4096;

/// An endless [`JobStream`] over a [`WorkloadSpec`]'s [`JobSource`],
/// capped at `limit` jobs, with a by-work DAG cache so structurally
/// identical jobs share one DAG allocation.
pub struct SpecJobStream {
    source: JobSource,
    shape: ShapeKind,
    limit: u64,
    produced: u64,
    dag_cache: BTreeMap<u64, Arc<JobDag>>,
}

impl SpecJobStream {
    /// Stream the first `limit` jobs of `spec`'s endless source.
    pub fn new(spec: &WorkloadSpec, limit: u64) -> Self {
        SpecJobStream {
            source: spec.job_source(),
            shape: spec.shape,
            limit,
            produced: 0,
            dag_cache: BTreeMap::new(),
        }
    }
}

impl JobStream for SpecJobStream {
    fn next_job(&mut self) -> Option<StreamedJob> {
        if self.produced >= self.limit {
            return None;
        }
        self.produced += 1;
        let job = self.source.next_job();
        let shape = self.shape;
        if self.dag_cache.len() >= DAG_CACHE_CAP && !self.dag_cache.contains_key(&job.work) {
            // Live jobs keep their Arcs; only the cache's references drop.
            self.dag_cache.clear();
        }
        let dag = self
            .dag_cache
            .entry(job.work)
            .or_insert_with(|| Arc::new(shape.build(job.work)))
            .clone();
        Some(StreamedJob {
            arrival: job.arrival,
            weight: 1,
            dag,
        })
    }
}

/// Peak resident set size of this process in kB, from `/proc/self/status`
/// (`VmHWM`). `None` off Linux — the CI memory-ceiling smoke only runs
/// where it is `Some`.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Result of a high-level streaming run: the engine summary plus streaming
/// flow statistics and the live OPT tracker over the same arrivals.
pub struct StreamRun {
    /// Engine summary (stats, rounds, exact max flow, retirement).
    pub summary: StreamSummary,
    /// Streaming flow statistics (exact max/mean, histogram percentiles).
    pub flows: StreamingFlowStats,
    /// Incremental OPT lower bounds over every streamed arrival.
    pub opt: OptTracker,
}

impl StreamRun {
    /// `max_flow / combined_lower_bound`, `None` when the bound is zero.
    pub fn competitive_ratio(&self) -> Option<f64> {
        let bound = self.opt.combined_lower_bound().to_f64();
        (bound > 0.0).then(|| self.summary.max_flow.to_f64() / bound)
    }
}

/// Run the streaming work-stealing engine over the first `jobs` jobs of
/// `spec`, folding flows into streaming stats and OPT bounds on the fly.
pub fn run_stream_ws(
    spec: &WorkloadSpec,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
    jobs: u64,
) -> Result<StreamRun, StreamError> {
    run_stream_ws_observed(spec, config, policy, seed, jobs, &mut NullRecorder)
}

/// [`run_stream_ws`] with a [`Recorder`] attached (engine taxonomy plus
/// the `ws.stream.*` retirement counters).
pub fn run_stream_ws_observed(
    spec: &WorkloadSpec,
    config: &SimConfig,
    policy: StealPolicy,
    seed: u64,
    jobs: u64,
    rec: &mut dyn Recorder,
) -> Result<StreamRun, StreamError> {
    let mut tap = OptTap::new(SpecJobStream::new(spec, jobs), config.m);
    let mut flows = StreamingFlowStats::new(0.0, FLOW_HIST_HI_TICKS, FLOW_HIST_BINS);
    let (summary, _) = run_worksteal_stream_observed(
        &mut tap,
        config,
        policy,
        seed,
        &mut |o| {
            flows.record(o.flow);
        },
        rec,
    )?;
    let (_, opt) = tap.into_parts();
    Ok(StreamRun {
        summary,
        flows,
        opt,
    })
}

/// Run the streaming centralized FIFO engine over the first `jobs` jobs of
/// `spec` — the streaming counterpart of `simulate_fifo`.
pub fn run_stream_fifo(
    spec: &WorkloadSpec,
    config: &SimConfig,
    jobs: u64,
) -> Result<StreamRun, StreamError> {
    run_stream_fifo_observed(spec, config, jobs, &mut NullRecorder)
}

/// [`run_stream_fifo`] with a [`Recorder`] attached.
pub fn run_stream_fifo_observed(
    spec: &WorkloadSpec,
    config: &SimConfig,
    jobs: u64,
    rec: &mut dyn Recorder,
) -> Result<StreamRun, StreamError> {
    let mut tap = OptTap::new(SpecJobStream::new(spec, jobs), config.m);
    let mut flows = StreamingFlowStats::new(0.0, FLOW_HIST_HI_TICKS, FLOW_HIST_BINS);
    let (summary, _) = run_priority_stream_observed(
        &mut tap,
        config,
        &Fifo,
        &mut |o| {
            flows.record(o.flow);
        },
        rec,
    )?;
    let (_, opt) = tap.into_parts();
    Ok(StreamRun {
        summary,
        flows,
        opt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_workloads::DistKind;

    fn spec(n: usize) -> WorkloadSpec {
        WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n, 7)
    }

    #[test]
    fn spec_stream_respects_limit_and_caches_dags() {
        let mut s = SpecJobStream::new(&spec(0), 50);
        let mut jobs = Vec::new();
        while let Some(j) = s.next_job() {
            jobs.push(j);
        }
        assert_eq!(jobs.len(), 50);
        // Arrivals non-decreasing (engine contract).
        assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Equal-work jobs share a DAG allocation.
        assert!(s.dag_cache.len() <= 50);
        for j in &jobs {
            let cached = s.dag_cache.get(&j.dag.total_work());
            if let Some(d) = cached {
                assert!(Arc::ptr_eq(d, &j.dag) || d.total_work() == j.dag.total_work());
            }
        }
    }

    #[test]
    fn stream_run_produces_consistent_stats() {
        let run = run_stream_ws(
            &spec(0),
            &SimConfig::new(4).with_free_steals(),
            StealPolicy::StealKFirst { k: 16 },
            42,
            400,
        )
        .expect("streams cleanly");
        assert_eq!(run.summary.jobs, 400);
        assert_eq!(run.flows.count(), 400);
        assert_eq!(run.summary.max_flow, run.flows.max());
        assert_eq!(run.opt.arrivals(), 400);
        // Engine can't beat the lower bound.
        let ratio = run.competitive_ratio().expect("bound positive");
        assert!(ratio >= 1.0 - 1e-9, "ratio = {ratio}");
        // Steady state recycles: far fewer slots than jobs.
        assert!(run.summary.retire.slab_slots < 400);
        assert_eq!(run.summary.retire.jobs_retired, 400);
    }

    #[test]
    fn fifo_stream_run_completes() {
        let run = run_stream_fifo(&spec(0), &SimConfig::new(4), 200).expect("streams cleanly");
        assert_eq!(run.summary.jobs, 200);
        assert!(run.competitive_ratio().expect("bound positive") >= 1.0 - 1e-9);
    }

    #[test]
    fn peak_rss_probe_parses_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0);
        }
    }
}
