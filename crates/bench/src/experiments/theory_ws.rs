//! Theorem 4.1 / Corollaries 4.2–4.3 validation: steal-k-first with
//! `(k+1+ε)` speed has maximum flow `O((1/ε²)·max{OPT, ln n})` w.h.p.
//!
//! For each `(k, ε)` we run steal-k-first at speed `k+1+ε` and report the
//! normalized value `max-flow / max{OPT, ln n}`, which the theorem bounds
//! by `c/ε²` for a universal constant. The sweep shows the normalized value
//! staying bounded as `n` grows — the substance of the w.h.p. guarantee —
//! and far below the (loose) proof constant 65.

use super::PAPER_M;
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_time::Speed;
use parflow_workloads::{DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// One `(k, ε, n)` data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WsPoint {
    /// steal-k-first parameter.
    pub k: u32,
    /// ε (speed = k + 1 + ε).
    pub epsilon: f64,
    /// Number of jobs.
    pub n: usize,
    /// Max flow of steal-k-first at the augmented speed (ticks).
    pub ws_max_flow: f64,
    /// `max{OPT, ln n}` at unit speed (ticks).
    pub denom: f64,
    /// Normalized value `ws_max_flow / denom` (theorem: `≤ c/ε²`).
    pub normalized: f64,
}

/// Run the sweep: `k ∈ ks`, fixed ε = 1/2, growing n.
pub fn run(ks: &[u32], ns: &[usize], seed: u64) -> Vec<WsPoint> {
    let pairs: Vec<(u32, usize)> = ks
        .iter()
        .flat_map(|&k| ns.iter().map(move |&n| (k, n)))
        .collect();
    super::par_map(pairs, |(k, n)| {
        // Speed = k + 1 + ε with ε = 1/2 → (2k + 3) / 2.
        let speed = Speed::new(2 * (k as u64) + 3, 2);
        let epsilon = 0.5;
        let qps = parflow_workloads::qps_for_utilization(DistKind::Bing, PAPER_M, 0.9);
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n, seed ^ n as u64).generate();
        let cfg = SimConfig::new(PAPER_M).with_speed(speed);
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        let flow = simulate_worksteal(&inst, &cfg, policy, seed ^ (k as u64) << 8)
            .max_flow()
            .to_f64();
        let opt = opt_max_flow(&inst, PAPER_M).to_f64();
        let denom = opt.max((n as f64).ln());
        WsPoint {
            k,
            epsilon,
            n,
            ws_max_flow: flow,
            denom,
            normalized: flow / denom,
        }
    })
}

/// Render rows.
pub fn table(points: &[WsPoint]) -> Table {
    let mut t = Table::new([
        "k",
        "speed",
        "n",
        "WS max flow",
        "max{OPT, ln n}",
        "normalized",
        "bound c/eps^2 (c=65)",
    ]);
    for p in points {
        t.row([
            p.k.to_string(),
            format!("{:.1}", p.k as f64 + 1.0 + p.epsilon),
            p.n.to_string(),
            format!("{:.1}", p.ws_max_flow),
            format!("{:.1}", p.denom),
            format!("{:.3}", p.normalized),
            format!("{:.0}", 65.0 / (p.epsilon * p.epsilon)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_value_stays_bounded() {
        let pts = run(&[0, 2], &[500, 2_000], 3);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            // Theorem ceiling with the paper's constant: 65/ε² = 260.
            assert!(
                p.normalized <= 65.0 / (p.epsilon * p.epsilon),
                "Theorem 4.1 ceiling exceeded: {p:?}"
            );
            assert!(p.normalized > 0.0);
        }
    }

    #[test]
    fn growth_with_n_is_sublinear() {
        // The w.h.p. bound implies max flow grows like max{OPT, ln n}, so
        // quadrupling n must not quadruple the normalized value.
        let pts = run(&[1], &[500, 2_000], 7);
        let (small, large) = (pts[0].normalized, pts[1].normalized);
        assert!(
            large <= small * 4.0,
            "normalized flow should not scale with n: {small} -> {large}"
        );
    }

    #[test]
    fn table_renders() {
        let pts = run(&[0], &[200], 1);
        assert!(table(&pts).render().contains("normalized"));
    }
}
