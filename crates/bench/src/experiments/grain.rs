//! Ablation: parallel-for chunking granularity.
//!
//! The paper's jobs are parallel-for loops; how finely the body is chunked
//! decides how much parallelism work stealing can actually exploit. Coarse
//! grains (few fat chunks) bound the achievable speedup per job — span
//! grows — while very fine grains add source/sink-relative overhead and
//! deque traffic. This sweep quantifies the U-shape on the Bing workload.

use super::PAPER_M;
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, ShapeKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// One grain data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GrainPoint {
    /// Chunk grain in work units (1 unit = 0.1 ms).
    pub grain: u64,
    /// Mean span of the generated jobs (units).
    pub mean_span: f64,
    /// steal-16-first max flow (ms).
    pub max_flow_ms: f64,
    /// OPT max flow (ms) — grain-independent up to the +2 source/sink units.
    pub opt_ms: f64,
}

/// Grains swept by default: 0.1 ms to 12.8 ms per chunk.
pub fn default_grains() -> Vec<u64> {
    vec![1, 4, 10, 32, 128]
}

/// Run the sweep at the given load.
pub fn run(grains: &[u64], qps: f64, n_jobs: usize, seed: u64) -> Vec<GrainPoint> {
    let cfg = SimConfig::new(PAPER_M).with_free_steals();
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    super::par_map(grains.to_vec(), |grain| {
        let spec = WorkloadSpec {
            dist: DistKind::Bing,
            shape: ShapeKind::ParallelFor { grain },
            qps: Some(qps),
            period_ticks: 0,
            n_jobs,
            seed,
        };
        let inst = spec.generate();
        let mean_span =
            inst.jobs().iter().map(|j| j.span() as f64).sum::<f64>() / inst.len().max(1) as f64;
        let flow = simulate_worksteal(
            &inst,
            &cfg,
            StealPolicy::StealKFirst { k: 16 },
            seed ^ grain,
        )
        .max_flow();
        GrainPoint {
            grain,
            mean_span,
            max_flow_ms: flow.to_f64() * to_ms,
            opt_ms: opt_max_flow(&inst, PAPER_M).to_f64() * to_ms,
        }
    })
}

/// Render rows.
pub fn table(points: &[GrainPoint]) -> Table {
    let mut t = Table::new([
        "grain (units)",
        "grain (ms)",
        "mean span (units)",
        "steal-16 max flow (ms)",
        "OPT (ms)",
        "ratio",
    ]);
    for p in points {
        t.row([
            p.grain.to_string(),
            format!("{:.1}", p.grain as f64 / 10.0),
            format!("{:.1}", p.mean_span),
            format!("{:.2}", p.max_flow_ms),
            format!("{:.2}", p.opt_ms),
            format!("{:.2}", p.max_flow_ms / p.opt_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_grows_with_grain() {
        let pts = run(&[1, 128], 1000.0, 1_000, 3);
        assert!(pts[0].mean_span < pts[1].mean_span);
    }

    #[test]
    fn coarse_grain_hurts_tail_latency() {
        // 12.8 ms chunks make wide jobs nearly sequential: the max flow
        // should exceed the fine-grain (1 ms) configuration.
        let pts = run(&[10, 128], 1100.0, 4_000, 7);
        let fine = &pts[0];
        let coarse = &pts[1];
        assert!(
            coarse.max_flow_ms > fine.max_flow_ms,
            "coarse {} should exceed fine {}",
            coarse.max_flow_ms,
            fine.max_flow_ms
        );
    }

    #[test]
    fn table_renders() {
        let pts = run(&[10], 800.0, 300, 1);
        assert!(table(&pts).render().contains("grain (ms)"));
    }
}
