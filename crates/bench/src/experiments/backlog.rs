//! Diagnostic experiment: backlog dynamics under the two admission
//! policies.
//!
//! The Figure 2 gap has a mechanism: admit-first keeps the global queue
//! near-empty by opening jobs eagerly — so many jobs run quasi-sequentially
//! side by side (high *live* count, long per-job latency) — while
//! steal-k-first holds jobs in the queue and finishes the admitted ones
//! with full parallelism (short live list, fast drain, FIFO-like tail).
//! Sampling the engine's queue/live/deque state over time makes that
//! mechanism directly visible.

use super::{PAPER_K, PAPER_M};
use parflow_core::{simulate_worksteal, BacklogSample, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Aggregated backlog statistics for one policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BacklogProfile {
    /// Policy name.
    pub policy: String,
    /// Peak global-queue length.
    pub max_queued: usize,
    /// Mean global-queue length over samples.
    pub mean_queued: f64,
    /// Peak number of concurrently live (admitted, unfinished) jobs.
    pub max_live: usize,
    /// Mean live jobs.
    pub mean_live: f64,
    /// Max flow (ticks).
    pub max_flow: f64,
}

fn profile(policy: StealPolicy, samples: &[BacklogSample], max_flow: f64) -> BacklogProfile {
    let n = samples.len().max(1) as f64;
    BacklogProfile {
        policy: policy.name(),
        max_queued: samples.iter().map(|s| s.queued).max().unwrap_or(0),
        mean_queued: samples.iter().map(|s| s.queued as f64).sum::<f64>() / n,
        max_live: samples.iter().map(|s| s.live).max().unwrap_or(0),
        mean_live: samples.iter().map(|s| s.live as f64).sum::<f64>() / n,
        max_flow,
    }
}

/// Run both policies at the given load with backlog sampling.
pub fn run(qps: f64, n_jobs: usize, seed: u64) -> Vec<BacklogProfile> {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
    let cfg = SimConfig::new(PAPER_M).with_free_steals().with_sampling(64);
    [
        StealPolicy::AdmitFirst,
        StealPolicy::StealKFirst { k: PAPER_K },
    ]
    .into_iter()
    .map(|policy| {
        let r = simulate_worksteal(&inst, &cfg, policy, seed);
        profile(policy, &r.samples, r.max_flow().to_f64())
    })
    .collect()
}

/// Render rows.
pub fn table(points: &[BacklogProfile]) -> Table {
    let mut t = Table::new([
        "policy",
        "max queued",
        "mean queued",
        "max live",
        "mean live",
        "max flow (ticks)",
    ]);
    for p in points {
        t.row([
            p.policy.clone(),
            p.max_queued.to_string(),
            format!("{:.1}", p.mean_queued),
            p.max_live.to_string(),
            format!("{:.1}", p.mean_live),
            format!("{:.0}", p.max_flow),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_is_visible() {
        let pts = run(1200.0, 6_000, 5);
        let admit = &pts[0];
        let steal = &pts[1];
        assert_eq!(admit.policy, "admit-first");
        // admit-first keeps more jobs live concurrently...
        assert!(
            admit.max_live >= steal.max_live,
            "admit live {} vs steal live {}",
            admit.max_live,
            steal.max_live
        );
        // ...while steal-k-first queues more and achieves a lower max flow.
        assert!(
            steal.mean_queued >= admit.mean_queued,
            "steal queued {} vs admit queued {}",
            steal.mean_queued,
            admit.mean_queued
        );
        assert!(steal.max_flow <= admit.max_flow);
    }

    #[test]
    fn table_renders() {
        let pts = run(900.0, 500, 1);
        assert!(table(&pts).render().contains("mean live"));
    }
}
