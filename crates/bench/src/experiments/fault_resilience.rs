//! Robustness extension: admission policies under injected faults.
//!
//! The paper's analysis assumes `m` identical, reliable processors. This
//! experiment measures how the two work-stealing admission policies degrade
//! when that assumption breaks: workers crash mid-run (their deques are
//! reinjected into the global queue and adopted by survivors), others run
//! at half speed, and individual tasks fail with some probability.
//!
//! The interesting comparison is admit-first vs steal-k-first. Admit-first
//! spreads every queued job across workers eagerly, so a crash orphans
//! tasks of *many* jobs at once but each loses little; steal-k-first keeps
//! jobs concentrated, so fewer jobs are hit but the backlogged global queue
//! amplifies the capacity loss. The sweep quantifies both effects on the
//! max flow time of *completed* jobs.

use super::{jobs_per_point, PAPER_K, PAPER_M};
use parflow_core::{simulate_worksteal, FaultPlan, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// One severity level of the fault sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultLevel {
    /// Workers crashed (staggered, one every 500 rounds from round 500).
    pub crashes: usize,
    /// Additional workers slowed to half speed for the whole run.
    pub slowdowns: usize,
    /// Per-task failure probability in ppm.
    pub panic_ppm: u32,
}

impl FaultLevel {
    /// Build the corresponding [`FaultPlan`] for a machine of `m` workers.
    pub fn plan(&self, m: usize) -> FaultPlan {
        assert!(self.crashes + self.slowdowns < m, "need a healthy survivor");
        let mut plan = FaultPlan::none();
        for i in 0..self.crashes {
            plan = plan.crash(i, 500 * (i as u64 + 1));
        }
        for j in 0..self.slowdowns {
            plan = plan.slowdown(self.crashes + j, 500_000);
        }
        plan.with_panic_ppm(self.panic_ppm)
    }
}

/// The default severity ladder: fault-free, then increasingly hostile.
pub fn default_levels() -> Vec<FaultLevel> {
    vec![
        FaultLevel {
            crashes: 0,
            slowdowns: 0,
            panic_ppm: 0,
        },
        FaultLevel {
            crashes: 1,
            slowdowns: 0,
            panic_ppm: 0,
        },
        FaultLevel {
            crashes: 2,
            slowdowns: 2,
            panic_ppm: 0,
        },
        FaultLevel {
            crashes: 4,
            slowdowns: 4,
            panic_ppm: 1_000,
        },
        FaultLevel {
            crashes: 6,
            slowdowns: 6,
            panic_ppm: 10_000,
        },
    ]
}

/// One `(policy, level)` data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultPoint {
    /// Steal-k threshold (0 = admit-first).
    pub k: u32,
    /// The severity level.
    pub level: FaultLevel,
    /// Max flow over completed jobs, in ms.
    pub max_flow_ms: f64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs lost to injected task panics.
    pub failed: usize,
    /// Total jobs.
    pub n: usize,
}

/// Run the sweep at the default size.
pub fn run(levels: &[FaultLevel], qps: f64, seed: u64) -> Vec<FaultPoint> {
    run_sized(levels, qps, seed, jobs_per_point().min(20_000))
}

/// Run with an explicit job count.
pub fn run_sized(levels: &[FaultLevel], qps: f64, seed: u64, n_jobs: usize) -> Vec<FaultPoint> {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
    let mut out = Vec::new();
    for &level in levels {
        let cfg = SimConfig::new(PAPER_M)
            .with_free_steals()
            .with_faults(level.plan(PAPER_M));
        for k in [0u32, PAPER_K] {
            let policy = if k == 0 {
                StealPolicy::AdmitFirst
            } else {
                StealPolicy::StealKFirst { k }
            };
            let r = simulate_worksteal(&inst, &cfg, policy, seed ^ ((k as u64) << 16));
            let completed = r
                .outcomes
                .iter()
                .filter(|o| o.status.is_completed())
                .count();
            out.push(FaultPoint {
                k,
                level,
                max_flow_ms: r.max_completed_flow().to_f64() * to_ms,
                completed,
                failed: r.outcomes.len() - completed,
                n: r.outcomes.len(),
            });
        }
    }
    out
}

/// Render rows.
pub fn table(points: &[FaultPoint]) -> Table {
    let mut t = Table::new([
        "crashes",
        "slow(0.5x)",
        "panic ppm",
        "policy",
        "max flow (ms)",
        "completed",
        "failed",
    ]);
    for p in points {
        t.row([
            p.level.crashes.to_string(),
            p.level.slowdowns.to_string(),
            p.level.panic_ppm.to_string(),
            if p.k == 0 {
                "admit-first".into()
            } else {
                format!("steal-{}-first", p.k)
            },
            format!("{:.2}", p.max_flow_ms),
            format!("{}/{}", p.completed, p.n),
            p.failed.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_level_completes_everything() {
        let pts = run_sized(
            &[FaultLevel {
                crashes: 0,
                slowdowns: 0,
                panic_ppm: 0,
            }],
            1000.0,
            5,
            2_000,
        );
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.completed, p.n);
            assert_eq!(p.failed, 0);
            assert!(p.max_flow_ms > 0.0);
        }
    }

    #[test]
    fn crashes_and_slowdowns_cost_flow_time() {
        let levels = [
            FaultLevel {
                crashes: 0,
                slowdowns: 0,
                panic_ppm: 0,
            },
            FaultLevel {
                crashes: 4,
                slowdowns: 4,
                panic_ppm: 0,
            },
        ];
        let pts = run_sized(&levels, 1000.0, 11, 4_000);
        for k in [0u32, PAPER_K] {
            let healthy = pts
                .iter()
                .find(|p| p.k == k && p.level.crashes == 0)
                .unwrap();
            let hostile = pts
                .iter()
                .find(|p| p.k == k && p.level.crashes == 4)
                .unwrap();
            // Everything still completes (no panics), but losing half the
            // machine's capacity must not make flows better.
            assert_eq!(hostile.completed, hostile.n);
            assert!(
                hostile.max_flow_ms >= healthy.max_flow_ms,
                "k={k}: hostile {} < healthy {}",
                hostile.max_flow_ms,
                healthy.max_flow_ms
            );
        }
    }

    #[test]
    fn panics_fail_some_jobs() {
        let pts = run_sized(
            &[FaultLevel {
                crashes: 0,
                slowdowns: 0,
                panic_ppm: 50_000,
            }],
            1000.0,
            9,
            2_000,
        );
        for p in &pts {
            assert!(p.failed > 0, "5% task-failure rate should lose jobs: {p:?}");
            assert_eq!(p.completed + p.failed, p.n);
        }
    }

    #[test]
    fn level_plan_respects_machine_size() {
        let plan = FaultLevel {
            crashes: 2,
            slowdowns: 1,
            panic_ppm: 5,
        }
        .plan(PAPER_M);
        assert!(plan.validate(PAPER_M).is_ok());
        assert_eq!(plan.crash_round_of(0), Some(500));
        assert_eq!(plan.crash_round_of(1), Some(1000));
        assert_eq!(plan.rate_ppm_of(2), 500_000);
    }

    #[test]
    #[should_panic(expected = "healthy survivor")]
    fn level_plan_rejects_total_faults() {
        let _ = FaultLevel {
            crashes: 8,
            slowdowns: 8,
            panic_ppm: 0,
        }
        .plan(16);
    }

    #[test]
    fn table_renders() {
        let pts = run_sized(&default_levels()[..2], 900.0, 1, 400);
        let rendered = table(&pts).render();
        assert!(rendered.contains("admit-first"));
        assert!(rendered.contains("steal-16-first"));
    }
}
