//! Ablation: EQUI (processor sharing) vs FIFO for maximum flow time.
//!
//! EQUI is the canonical scheduler of the speedup-curves line of work the
//! paper contrasts against (Section 8). It is great for *average* flow
//! time, but for the *maximum* it has a structural flaw: every later
//! arrival dilutes the share of the oldest unfinished job, so under
//! sustained load the tail job starves. This sweep shows EQUI's max-flow
//! gap to FIFO growing with utilization while its ℓ_1 (sum of flows) stays
//! competitive — the cleanest articulation of why the paper's objective
//! needs FIFO-like (arrival-ordered) policies.

use super::PAPER_M;
use parflow_core::{opt_max_flow, simulate_equi, simulate_fifo, SimConfig};
use parflow_metrics::{lk_norm, Table};
use parflow_time::Rational;
use parflow_workloads::{DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// One load level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EquiPoint {
    /// Queries per second.
    pub qps: f64,
    /// FIFO max flow (ms).
    pub fifo_max_ms: f64,
    /// EQUI max flow (ms).
    pub equi_max_ms: f64,
    /// FIFO ℓ_1 (sum of flows, ms).
    pub fifo_l1_ms: f64,
    /// EQUI ℓ_1 (ms).
    pub equi_l1_ms: f64,
    /// OPT max flow (ms).
    pub opt_ms: f64,
}

/// Run the load sweep.
pub fn run(qps_list: &[f64], n_jobs: usize, seed: u64) -> Vec<EquiPoint> {
    let cfg = SimConfig::new(PAPER_M);
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    qps_list
        .iter()
        .map(|&qps| {
            let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
            let fifo = simulate_fifo(&inst, &cfg);
            let equi = simulate_equi(&inst, &cfg);
            let flows = |r: &parflow_core::SimResult| -> Vec<Rational> {
                r.outcomes.iter().map(|o| o.flow).collect()
            };
            EquiPoint {
                qps,
                fifo_max_ms: fifo.max_flow().to_f64() * to_ms,
                equi_max_ms: equi.max_flow().to_f64() * to_ms,
                fifo_l1_ms: lk_norm(&flows(&fifo), 1) * to_ms,
                equi_l1_ms: lk_norm(&flows(&equi), 1) * to_ms,
                opt_ms: opt_max_flow(&inst, PAPER_M).to_f64() * to_ms,
            }
        })
        .collect()
}

/// Render rows.
pub fn table(points: &[EquiPoint]) -> Table {
    let mut t = Table::new([
        "QPS",
        "FIFO max (ms)",
        "EQUI max (ms)",
        "EQUI/FIFO max",
        "FIFO sum (ms)",
        "EQUI sum (ms)",
        "OPT max (ms)",
    ]);
    for p in points {
        t.row([
            format!("{:.0}", p.qps),
            format!("{:.2}", p.fifo_max_ms),
            format!("{:.2}", p.equi_max_ms),
            format!("{:.2}", p.equi_max_ms / p.fifo_max_ms),
            format!("{:.0}", p.fifo_l1_ms),
            format!("{:.0}", p.equi_l1_ms),
            format!("{:.2}", p.opt_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_never_beats_fifo_on_max_flow_under_load() {
        let pts = run(&[1000.0, 1200.0], 4_000, 11);
        for p in &pts {
            assert!(
                p.equi_max_ms >= p.fifo_max_ms * 0.99,
                "EQUI should not beat FIFO on max flow: {p:?}"
            );
            assert!(p.fifo_max_ms >= p.opt_ms * 0.99, "{p:?}");
        }
    }

    #[test]
    fn gap_grows_with_load() {
        let pts = run(&[800.0, 1200.0], 4_000, 7);
        let lo = pts[0].equi_max_ms / pts[0].fifo_max_ms;
        let hi = pts[1].equi_max_ms / pts[1].fifo_max_ms;
        assert!(
            hi >= lo * 0.9,
            "EQUI's max-flow gap should not shrink with load: {lo} -> {hi}"
        );
    }

    #[test]
    fn table_renders() {
        let pts = run(&[800.0], 400, 1);
        assert!(table(&pts).render().contains("EQUI/FIFO"));
    }
}
