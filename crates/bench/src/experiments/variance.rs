//! Seed variance: how much does randomized work stealing's max flow time
//! fluctuate across runs?
//!
//! The paper's guarantees for steal-k-first are *with high probability*;
//! the deterministic schedulers have none of that slack. This experiment
//! quantifies the gap: run the same instance under many seeds and report
//! mean, standard deviation and range of the max flow for each policy
//! (FIFO is seed-independent and serves as the control).

use super::{PAPER_K, PAPER_M};
use parflow_core::{simulate_batched, simulate_fifo, ReplicaSpec, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// Variance summary of one policy across seeds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VariancePoint {
    /// Policy name.
    pub policy: String,
    /// Runs.
    pub runs: usize,
    /// Mean max flow (ms).
    pub mean_ms: f64,
    /// Standard deviation (ms).
    pub std_ms: f64,
    /// Minimum observed (ms).
    pub min_ms: f64,
    /// Maximum observed (ms).
    pub max_ms: f64,
}

fn summarize(policy: &str, values_ms: &[f64]) -> VariancePoint {
    let n = values_ms.len().max(1) as f64;
    let mean = values_ms.iter().sum::<f64>() / n;
    let var = values_ms.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    VariancePoint {
        policy: policy.to_string(),
        runs: values_ms.len(),
        mean_ms: mean,
        std_ms: var.sqrt(),
        min_ms: values_ms.iter().copied().fold(f64::INFINITY, f64::min),
        max_ms: values_ms.iter().copied().fold(0.0, f64::max),
    }
}

/// Run `runs` seeds of each policy on the same instance.
pub fn run(qps: f64, n_jobs: usize, runs: usize, seed: u64) -> Vec<VariancePoint> {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
    let cfg = SimConfig::new(PAPER_M).with_free_steals();
    let to_ms = 1000.0 / TICKS_PER_SECOND;

    let fifo = simulate_fifo(&inst, &cfg).max_flow().to_f64() * to_ms;
    // Replicas of one policy differ only by seed, so each thread runs its
    // chunk through the batched engine with a single lane: one arena (and
    // all the SoA scratch) is recycled across every replica in the chunk
    // instead of being re-grown per run, and the schedules stay
    // bit-identical to per-replica `simulate_worksteal`.
    let collect = |policy: StealPolicy| -> Vec<f64> {
        let specs: Vec<ReplicaSpec> = (0..runs)
            .map(|i| ReplicaSpec::new(cfg.clone(), policy, seed ^ (i as u64 + 1)))
            .collect();
        let chunk = runs.div_ceil(super::par_threads().max(1)).max(1);
        let chunks: Vec<Vec<ReplicaSpec>> = specs.chunks(chunk).map(<[_]>::to_vec).collect();
        super::par_map(chunks, |chunk| {
            simulate_batched(&inst, &chunk, 1)
                .into_iter()
                .map(|r| r.max_flow().to_f64() * to_ms)
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    vec![
        summarize("FIFO (deterministic)", &[fifo]),
        summarize(
            "steal-16-first",
            &collect(StealPolicy::StealKFirst { k: PAPER_K }),
        ),
        summarize("admit-first", &collect(StealPolicy::AdmitFirst)),
    ]
}

/// Render rows.
pub fn table(points: &[VariancePoint]) -> Table {
    let mut t = Table::new(["policy", "runs", "mean (ms)", "std (ms)", "min", "max"]);
    for p in points {
        t.row([
            p.policy.clone(),
            p.runs.to_string(),
            format!("{:.2}", p.mean_ms),
            format!("{:.2}", p.std_ms),
            format!("{:.2}", p.min_ms),
            format!("{:.2}", p.max_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_has_zero_variance() {
        let pts = run(1000.0, 1_500, 5, 3);
        let fifo = &pts[0];
        assert_eq!(fifo.std_ms, 0.0);
        assert_eq!(fifo.min_ms, fifo.max_ms);
    }

    #[test]
    fn randomized_policies_vary_but_bounded() {
        let pts = run(1100.0, 3_000, 6, 7);
        for p in &pts[1..] {
            assert_eq!(p.runs, 6);
            assert!(p.min_ms <= p.mean_ms && p.mean_ms <= p.max_ms, "{p:?}");
            // Relative spread stays moderate (the w.h.p. guarantee at work).
            assert!(
                p.max_ms <= 3.0 * p.min_ms,
                "{}: spread too wide {} vs {}",
                p.policy,
                p.min_ms,
                p.max_ms
            );
        }
    }

    #[test]
    fn table_renders() {
        let pts = run(900.0, 300, 2, 1);
        assert!(table(&pts).render().contains("std (ms)"));
    }
}
