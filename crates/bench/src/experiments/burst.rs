//! Robustness experiment: bursty arrivals.
//!
//! Poisson arrivals (the paper's model) are relatively smooth; real
//! services see synchronized bursts. This experiment fixes total load and
//! varies burstiness — `B` jobs arriving simultaneously every `B·gap`
//! ticks — and measures how each scheduler's max flow degrades. FIFO and
//! steal-k-first degrade linearly in B (the whole burst must drain);
//! admit-first degrades faster because it serializes the burst's jobs side
//! by side.

use super::PAPER_M;
use parflow_core::{opt_max_flow, simulate_fifo, simulate_worksteal, SimConfig, StealPolicy};
use parflow_dag::{Instance, Job};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, ShapeKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One burstiness level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BurstPoint {
    /// Jobs per burst (1 = periodic arrivals).
    pub burst: usize,
    /// FIFO max flow (ms).
    pub fifo_ms: f64,
    /// steal-16-first max flow (ms).
    pub steal_ms: f64,
    /// admit-first max flow (ms).
    pub admit_ms: f64,
    /// OPT (ms).
    pub opt_ms: f64,
}

/// Build a bursty variant of the Bing workload with fixed average rate.
fn bursty_instance(burst: usize, gap_per_job: u64, n_jobs: usize, seed: u64) -> Instance {
    // Sample works via the standard generator, then rewrite arrivals.
    let base = WorkloadSpec {
        dist: DistKind::Bing,
        shape: ShapeKind::ParallelFor { grain: 10 },
        qps: None,
        period_ticks: gap_per_job,
        n_jobs,
        seed,
    }
    .generate();
    let jobs: Vec<Job> = base
        .jobs()
        .iter()
        .map(|j| {
            let group = (j.id as usize) / burst;
            let arrival = group as u64 * gap_per_job * burst as u64;
            Job::new(j.id, arrival, Arc::clone(&j.dag))
        })
        .collect();
    Instance::new(jobs)
}

/// Run the burstiness sweep at ~65 % average utilization.
pub fn run(bursts: &[usize], n_jobs: usize, seed: u64) -> Vec<BurstPoint> {
    // gap chosen so that E[W]≈108 units / (gap·m) ≈ 0.65.
    let gap_per_job = 10;
    let cfg = SimConfig::new(PAPER_M).with_free_steals();
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    bursts
        .iter()
        .map(|&burst| {
            let inst = bursty_instance(burst, gap_per_job, n_jobs, seed);
            BurstPoint {
                burst,
                fifo_ms: simulate_fifo(&inst, &cfg).max_flow().to_f64() * to_ms,
                steal_ms: simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, seed)
                    .max_flow()
                    .to_f64()
                    * to_ms,
                admit_ms: simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed)
                    .max_flow()
                    .to_f64()
                    * to_ms,
                opt_ms: opt_max_flow(&inst, PAPER_M).to_f64() * to_ms,
            }
        })
        .collect()
}

/// Default burst sizes.
pub fn default_bursts() -> Vec<usize> {
    vec![1, 4, 16, 64]
}

/// Render rows.
pub fn table(points: &[BurstPoint]) -> Table {
    let mut t = Table::new([
        "burst size",
        "OPT (ms)",
        "FIFO (ms)",
        "steal-16 (ms)",
        "admit-first (ms)",
        "admit/steal16",
    ]);
    for p in points {
        t.row([
            p.burst.to_string(),
            format!("{:.2}", p.opt_ms),
            format!("{:.2}", p.fifo_ms),
            format!("{:.2}", p.steal_ms),
            format!("{:.2}", p.admit_ms),
            format!("{:.2}", p.admit_ms / p.steal_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burstier_is_worse_for_everyone() {
        let pts = run(&[1, 64], 4_000, 3);
        assert!(pts[1].opt_ms > pts[0].opt_ms);
        assert!(pts[1].fifo_ms > pts[0].fifo_ms);
        assert!(pts[1].steal_ms > pts[0].steal_ms);
    }

    #[test]
    fn schedulers_dominate_opt_at_every_burstiness() {
        let pts = run(&[4, 16], 2_000, 9);
        for p in &pts {
            assert!(p.fifo_ms >= p.opt_ms * 0.99, "{p:?}");
            assert!(p.steal_ms >= p.opt_ms * 0.99, "{p:?}");
            assert!(p.admit_ms >= p.opt_ms * 0.99, "{p:?}");
        }
    }

    #[test]
    fn table_renders() {
        let pts = run(&[1], 300, 1);
        assert!(table(&pts).render().contains("burst size"));
    }
}
