//! Extension: a *distributed* Biggest-Weight-First.
//!
//! Section 7 proves centralized BWF scalable for maximum weighted flow
//! time, but — like FIFO — centralized BWF preempts and re-assigns every
//! step. The natural systems question: does work stealing with
//! **weight-ordered admission** (pop the heaviest queued job instead of
//! the oldest) recover most of BWF's benefit? This experiment compares,
//! on weighted instances across loads:
//!
//! * centralized BWF (the paper's Section 7 algorithm),
//! * steal-16-first with weighted admission (our distributed BWF),
//! * steal-16-first with FIFO admission (weight-blind),
//! * the weighted lower bound.
//!
//! **Finding (nuanced):** weighted admission helps exactly when a heavy
//! job's flow is dominated by *queueing* — in backlog episodes it cuts the
//! max weighted flow by up to ~3x versus FIFO admission — but it cannot
//! recover BWF's full advantage, because once jobs are admitted work
//! stealing never preempts: a heavy arrival still waits for running light
//! jobs to drain. Across seeds, centralized BWF wins consistently
//! (typically 2-5x better than either WS variant). This sharpens the
//! Section 7 story: the weighted objective genuinely benefits from the
//! centralized, preemptive scheduler, unlike the unweighted case where
//! non-preemptive work stealing suffices (Theorem 4.1).

use super::{PAPER_K, PAPER_M};
use parflow_core::{
    opt_weighted_lower_bound, simulate_bwf, simulate_worksteal, SimConfig, StealPolicy,
};
use parflow_dag::{Instance, Job};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, ShapeKind, WorkloadSpec, TICKS_PER_SECOND};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One load level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WeightedWsPoint {
    /// Queries per second.
    pub qps: f64,
    /// Centralized BWF max weighted flow (w·ms).
    pub bwf: f64,
    /// Distributed BWF (weighted admission) max weighted flow (w·ms).
    pub ws_weighted: f64,
    /// Weight-blind work stealing max weighted flow (w·ms).
    pub ws_fifo: f64,
    /// Weighted lower bound (w·ms).
    pub lb: f64,
}

/// Build the weighted instance: heavy-tailed weights uncorrelated with work.
pub fn weighted_instance(qps: f64, n_jobs: usize, seed: u64) -> Instance {
    let base = WorkloadSpec {
        dist: DistKind::Bing,
        shape: ShapeKind::ParallelFor { grain: 10 },
        qps: Some(qps),
        period_ticks: 0,
        n_jobs,
        seed,
    }
    .generate();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD15C);
    let jobs: Vec<Job> = base
        .jobs()
        .iter()
        .map(|j| {
            let w = match rng.gen_range(0..100u32) {
                0 => 1_000,
                1..=9 => 50,
                _ => 1,
            };
            Job::weighted(j.id, j.arrival, w, Arc::clone(&j.dag))
        })
        .collect();
    Instance::new(jobs)
}

/// Run the comparison.
pub fn run(qps_list: &[f64], n_jobs: usize, seed: u64) -> Vec<WeightedWsPoint> {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let policy = StealPolicy::StealKFirst { k: PAPER_K };
    qps_list
        .iter()
        .map(|&qps| {
            let inst = weighted_instance(qps, n_jobs, seed);
            let cfg = SimConfig::new(PAPER_M);
            let cfg_ws = SimConfig::new(PAPER_M).with_free_steals();
            let cfg_wws = SimConfig::new(PAPER_M)
                .with_free_steals()
                .with_weighted_admission();
            WeightedWsPoint {
                qps,
                bwf: simulate_bwf(&inst, &cfg).max_weighted_flow().to_f64() * to_ms,
                ws_weighted: simulate_worksteal(&inst, &cfg_wws, policy, seed)
                    .max_weighted_flow()
                    .to_f64()
                    * to_ms,
                ws_fifo: simulate_worksteal(&inst, &cfg_ws, policy, seed)
                    .max_weighted_flow()
                    .to_f64()
                    * to_ms,
                lb: opt_weighted_lower_bound(&inst, PAPER_M).to_f64() * to_ms,
            }
        })
        .collect()
}

/// Render rows.
pub fn table(points: &[WeightedWsPoint]) -> Table {
    let mut t = Table::new([
        "QPS",
        "BWF (w*ms)",
        "WS weighted-admit (w*ms)",
        "WS fifo-admit (w*ms)",
        "weighted LB",
        "WS-weighted/BWF",
    ]);
    for p in points {
        t.row([
            format!("{:.0}", p.qps),
            format!("{:.0}", p.bwf),
            format!("{:.0}", p.ws_weighted),
            format!("{:.0}", p.ws_fifo),
            format!("{:.0}", p.lb),
            format!("{:.2}", p.ws_weighted / p.bwf),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_admission_helps_on_average_but_bwf_wins() {
        // Max weighted flow is dominated by whichever heavy job gets
        // unlucky, so single runs are noisy; average across seeds.
        let mut sum_weighted = 0.0;
        let mut sum_fifo = 0.0;
        let mut sum_bwf = 0.0;
        for seed in [3u64, 7, 11, 19, 23] {
            let p = run(&[1100.0], 6_000, seed)[0];
            sum_weighted += p.ws_weighted;
            sum_fifo += p.ws_fifo;
            sum_bwf += p.bwf;
            // Preemptive BWF wins on every instance.
            assert!(p.bwf <= p.ws_weighted, "BWF should win: {p:?}");
            assert!(p.bwf <= p.ws_fifo, "BWF should win: {p:?}");
        }
        // On average, weight-aware admission does not hurt (and usually
        // helps) relative to weight-blind admission.
        assert!(
            sum_weighted <= sum_fifo * 1.10,
            "weighted admission should help on average: {sum_weighted} vs {sum_fifo}"
        );
        assert!(sum_bwf < sum_weighted);
    }

    #[test]
    fn all_dominate_lower_bound() {
        let pts = run(&[900.0], 3_000, 3);
        let p = &pts[0];
        assert!(p.bwf >= p.lb * 0.99, "{p:?}");
        assert!(p.ws_weighted >= p.lb * 0.99, "{p:?}");
        assert!(p.ws_fifo >= p.lb * 0.99, "{p:?}");
    }

    #[test]
    fn table_renders() {
        let pts = run(&[800.0], 400, 1);
        assert!(table(&pts).render().contains("weighted-admit"));
    }
}
