//! Figure 2: maximum flow time vs QPS for OPT, steal-k-first (k=16) and
//! admit-first on the Bing, finance and log-normal workloads (m = 16).
//!
//! The paper's observation to reproduce: **OPT has the smallest max flow,
//! admit-first the largest**, with steal-k-first close to OPT; the
//! admit-first gap widens with load (≈2× at high utilization for Bing and
//! log-normal).

use super::{jobs_per_point, par_map, PAPER_K, PAPER_M};
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_dag::Instance;
use parflow_metrics::Table;
use parflow_workloads::{DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// The paper's QPS levels per workload (low / medium / high load).
pub fn paper_qps(dist: DistKind) -> [f64; 3] {
    match dist {
        DistKind::Finance => [800.0, 900.0, 1000.0],
        _ => [800.0, 1000.0, 1200.0],
    }
}

/// One Figure 2 data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Queries per second.
    pub qps: f64,
    /// Realized machine utilization.
    pub utilization: f64,
    /// Simulated-OPT max flow, milliseconds.
    pub opt_ms: f64,
    /// steal-k-first (k = 16) max flow, milliseconds.
    pub steal_k_ms: f64,
    /// admit-first max flow, milliseconds.
    pub admit_ms: f64,
}

impl Fig2Point {
    /// `steal-k-first / OPT`.
    pub fn steal_k_ratio(&self) -> f64 {
        self.steal_k_ms / self.opt_ms
    }

    /// `admit-first / OPT`.
    pub fn admit_ratio(&self) -> f64 {
        self.admit_ms / self.opt_ms
    }
}

/// Run one workload's Figure 2 sweep.
pub fn run(dist: DistKind, seed: u64) -> Vec<Fig2Point> {
    run_sized(dist, seed, jobs_per_point(), PAPER_M)
}

/// Run with explicit size (tests and benches use small `n`).
///
/// Uses the systems steal-cost model (free steal attempts), matching the
/// paper's TBB runtime where a steal is ~10⁴× cheaper than a work unit.
pub fn run_sized(dist: DistKind, seed: u64, n_jobs: usize, m: usize) -> Vec<Fig2Point> {
    let cfg = SimConfig::new(m).with_free_steals();
    par_map(paper_qps(dist).to_vec(), |qps| {
        let spec = WorkloadSpec::paper_fig2(dist, qps, n_jobs, seed);
        let inst = spec.generate();
        point_for_instance(qps, &inst, &cfg, m, seed)
    })
}

/// Measure one pre-generated instance at `qps` — the Figure 2 kernel.
/// Shared by [`run_sized`] and the Criterion benches, so callers that
/// both tabulate and benchmark the same point generate its instance
/// exactly once.
pub fn point_for_instance(
    qps: f64,
    inst: &Instance,
    cfg: &SimConfig,
    m: usize,
    seed: u64,
) -> Fig2Point {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let opt = opt_max_flow(inst, m).to_f64() * to_ms;
    let steal_k = simulate_worksteal(
        inst,
        cfg,
        StealPolicy::StealKFirst { k: PAPER_K },
        seed ^ 0xA5,
    )
    .max_flow()
    .to_f64()
        * to_ms;
    let admit = simulate_worksteal(inst, cfg, StealPolicy::AdmitFirst, seed ^ 0x5A)
        .max_flow()
        .to_f64()
        * to_ms;
    Fig2Point {
        qps,
        utilization: inst.utilization(m).map(|u| u.to_f64()).unwrap_or(0.0),
        opt_ms: opt,
        steal_k_ms: steal_k,
        admit_ms: admit,
    }
}

/// Render the paper-style rows.
pub fn table(dist: DistKind, points: &[Fig2Point]) -> Table {
    let mut t = Table::new([
        "workload",
        "QPS",
        "util",
        "OPT (ms)",
        "steal-16-first (ms)",
        "admit-first (ms)",
        "steal16/OPT",
        "admit/OPT",
    ]);
    for p in points {
        t.row([
            dist.name().to_string(),
            format!("{:.0}", p.qps),
            format!("{:.0}%", p.utilization * 100.0),
            format!("{:.2}", p.opt_ms),
            format!("{:.2}", p.steal_k_ms),
            format!("{:.2}", p.admit_ms),
            format!("{:.2}", p.steal_k_ratio()),
            format!("{:.2}", p.admit_ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_qps_levels() {
        assert_eq!(paper_qps(DistKind::Bing), [800.0, 1000.0, 1200.0]);
        assert_eq!(paper_qps(DistKind::Finance), [800.0, 900.0, 1000.0]);
        assert_eq!(paper_qps(DistKind::LogNormal), [800.0, 1000.0, 1200.0]);
    }

    #[test]
    fn small_run_shape_holds() {
        // Small but real run: OPT must lower-bound both schedulers.
        let pts = run_sized(DistKind::Bing, 7, 2_000, 16);
        assert_eq!(pts.len(), 3);
        for p in &pts {
            assert!(p.opt_ms > 0.0);
            assert!(p.steal_k_ms >= p.opt_ms, "{p:?}");
            assert!(p.admit_ms >= p.opt_ms, "{p:?}");
            assert!(p.utilization > 0.3 && p.utilization < 1.0, "{p:?}");
        }
        // Utilization grows with QPS.
        assert!(pts[0].utilization < pts[2].utilization);
    }

    #[test]
    fn table_renders() {
        let pts = run_sized(DistKind::Finance, 3, 500, 8);
        let t = table(DistKind::Finance, &pts);
        assert_eq!(t.len(), 3);
        let s = t.render();
        assert!(s.contains("finance"));
        assert!(s.contains("QPS"));
    }
}
