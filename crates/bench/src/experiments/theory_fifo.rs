//! Theorem 3.1 validation: FIFO with `(1+ε)` speed is `(3/ε)`-competitive
//! for maximum flow time.
//!
//! For each ε we run FIFO at speed `1+ε` on a high-load workload and report
//! `max-flow / OPT` against the proven ceiling `3/ε`. The measured ratios
//! sit far below the ceiling (the analysis is worst-case), but must (a)
//! never exceed it and (b) not blow up as ε shrinks.

use super::PAPER_M;
use parflow_core::{opt_max_flow, simulate_fifo, SimConfig};
use parflow_metrics::Table;
use parflow_time::Speed;
use parflow_workloads::{DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// One ε data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FifoPoint {
    /// ε as a fraction (speed = 1 + ε).
    pub epsilon: f64,
    /// FIFO's max flow at speed `1+ε` (ticks).
    pub fifo_max_flow: f64,
    /// The unit-speed OPT lower bound (ticks).
    pub opt: f64,
    /// Measured ratio.
    pub ratio: f64,
    /// The theorem's ceiling `3/ε`.
    pub bound: f64,
}

/// ε values as exact fractions (numerator over denominator).
pub const EPSILONS: [(u64, u64); 5] = [(1, 10), (1, 5), (1, 2), (1, 1), (2, 1)];

/// Run the ε sweep on a near-saturation workload.
pub fn run(n_jobs: usize, seed: u64) -> Vec<FifoPoint> {
    // ≈ 95 % utilization at unit speed: QPS chosen against the bing mean.
    let qps = parflow_workloads::qps_for_utilization(DistKind::Bing, PAPER_M, 0.95);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
    let opt = opt_max_flow(&inst, PAPER_M).to_f64();
    EPSILONS
        .iter()
        .map(|&(en, ed)| {
            let speed = Speed::augmented(en, ed);
            let cfg = SimConfig::new(PAPER_M).with_speed(speed);
            let flow = simulate_fifo(&inst, &cfg).max_flow().to_f64();
            let epsilon = en as f64 / ed as f64;
            FifoPoint {
                epsilon,
                fifo_max_flow: flow,
                opt,
                ratio: flow / opt,
                bound: 3.0 / epsilon,
            }
        })
        .collect()
}

/// Render rows.
pub fn table(points: &[FifoPoint]) -> Table {
    let mut t = Table::new([
        "epsilon",
        "speed",
        "FIFO max flow",
        "OPT",
        "ratio",
        "bound 3/eps",
    ]);
    for p in points {
        t.row([
            format!("{:.2}", p.epsilon),
            format!("{:.2}", 1.0 + p.epsilon),
            format!("{:.1}", p.fifo_max_flow),
            format!("{:.1}", p.opt),
            format!("{:.3}", p.ratio),
            format!("{:.1}", p.bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_respect_theorem() {
        let pts = run(3_000, 5);
        assert_eq!(pts.len(), EPSILONS.len());
        for p in &pts {
            // With (1+ε) speed FIFO may legitimately beat the unit-speed
            // OPT bound (ratio < 1); the theorem only caps it above.
            assert!(p.ratio > 0.0, "{p:?}");
            assert!(
                p.ratio <= p.bound,
                "Theorem 3.1 violated: ratio {} > bound {}",
                p.ratio,
                p.bound
            );
        }
    }

    #[test]
    fn more_speed_means_less_flow() {
        let pts = run(2_000, 9);
        for w in pts.windows(2) {
            assert!(
                w[1].fifo_max_flow <= w[0].fifo_max_flow + 1e-9,
                "flow should be non-increasing in speed: {w:?}"
            );
        }
    }

    #[test]
    fn table_renders() {
        let pts = run(500, 1);
        assert!(table(&pts).render().contains("bound 3/eps"));
    }
}
