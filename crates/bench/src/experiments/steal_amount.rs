//! Ablation: steal-one (the paper / Cilk / TBB) vs steal-half (Go, X10)
//! transfer granularity, under the unit-cost steal model where the
//! difference matters most — each successful steal costs a round, so
//! moving more work per steal amortizes that cost.

use super::{PAPER_K, PAPER_M};
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// One load level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StealAmountPoint {
    /// Queries per second.
    pub qps: f64,
    /// steal-one max flow (ms).
    pub one_ms: f64,
    /// steal-half max flow (ms).
    pub half_ms: f64,
    /// Successful steals under steal-one.
    pub one_steals: u64,
    /// Successful steals under steal-half.
    pub half_steals: u64,
    /// OPT (ms).
    pub opt_ms: f64,
}

/// Run the comparison (unit-cost steals, steal-k-first with k = 16).
pub fn run(qps_list: &[f64], n_jobs: usize, seed: u64) -> Vec<StealAmountPoint> {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let policy = StealPolicy::StealKFirst { k: PAPER_K };
    qps_list
        .iter()
        .map(|&qps| {
            let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
            let one = simulate_worksteal(&inst, &SimConfig::new(PAPER_M), policy, seed);
            let half = simulate_worksteal(
                &inst,
                &SimConfig::new(PAPER_M).with_half_steals(),
                policy,
                seed,
            );
            StealAmountPoint {
                qps,
                one_ms: one.max_flow().to_f64() * to_ms,
                half_ms: half.max_flow().to_f64() * to_ms,
                one_steals: one.stats.successful_steals,
                half_steals: half.stats.successful_steals,
                opt_ms: opt_max_flow(&inst, PAPER_M).to_f64() * to_ms,
            }
        })
        .collect()
}

/// Render rows.
pub fn table(points: &[StealAmountPoint]) -> Table {
    let mut t = Table::new([
        "QPS",
        "steal-one (ms)",
        "steal-half (ms)",
        "steals (one)",
        "steals (half)",
        "OPT (ms)",
    ]);
    for p in points {
        t.row([
            format!("{:.0}", p.qps),
            format!("{:.2}", p.one_ms),
            format!("{:.2}", p.half_ms),
            p.one_steals.to_string(),
            p.half_steals.to_string(),
            format!("{:.2}", p.opt_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_needs_fewer_successful_steals() {
        let pts = run(&[1000.0], 4_000, 5);
        let p = &pts[0];
        assert!(
            p.half_steals <= p.one_steals,
            "half {} vs one {}",
            p.half_steals,
            p.one_steals
        );
    }

    #[test]
    fn both_dominate_opt() {
        let pts = run(&[800.0, 1100.0], 2_000, 9);
        for p in &pts {
            assert!(p.one_ms >= p.opt_ms * 0.99, "{p:?}");
            assert!(p.half_ms >= p.opt_ms * 0.99, "{p:?}");
        }
    }

    #[test]
    fn table_renders() {
        let pts = run(&[900.0], 300, 1);
        assert!(table(&pts).render().contains("steal-half"));
    }
}
