//! Extension experiment: ℓ_k norms of flow time and maximum stretch —
//! the open objectives named in the paper's conclusion ("are there online
//! algorithms with strong performance guarantees for other objectives such
//! as the ℓ_k-norms of flow time?") and Section 7's stretch remarks.
//!
//! We compare FIFO, EQUI and the two work-stealing policies on ℓ_1
//! (≈ average flow), ℓ_2, ℓ_∞ (= max flow) and the two DAG-stretch
//! interpretations (`F_i/W_i` and `F_i/P_i`). The structural story: FIFO
//! optimizes the tail (ℓ_∞) at some cost in ℓ_1, EQUI the reverse — the
//! trade-off that motivates studying the whole ℓ_k family.

use super::PAPER_M;
use parflow_core::{
    simulate_equi, simulate_fifo, simulate_worksteal, SimConfig, SimResult, StealPolicy,
};
use parflow_dag::Instance;
use parflow_metrics::{lk_norm, max_stretch, Table};
use parflow_time::Rational;
use parflow_workloads::{DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// One scheduler's norm profile.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NormPoint {
    /// Scheduler name.
    pub scheduler: String,
    /// ℓ_1 norm of flows (ticks).
    pub l1: f64,
    /// ℓ_2 norm.
    pub l2: f64,
    /// ℓ_∞ norm (max flow).
    pub linf: f64,
    /// Max stretch by total work `max F_i/W_i`.
    pub stretch_work: f64,
    /// Max stretch by span `max F_i/P_i`.
    pub stretch_span: f64,
}

fn profile(name: &str, inst: &Instance, r: &SimResult) -> NormPoint {
    let flows: Vec<Rational> = r.outcomes.iter().map(|o| o.flow).collect();
    let works: Vec<u64> = inst.jobs().iter().map(|j| j.work()).collect();
    let spans: Vec<u64> = inst.jobs().iter().map(|j| j.span()).collect();
    NormPoint {
        scheduler: name.to_string(),
        l1: lk_norm(&flows, 1),
        l2: lk_norm(&flows, 2),
        linf: lk_norm(&flows, u32::MAX),
        stretch_work: max_stretch(&flows, &works),
        stretch_span: max_stretch(&flows, &spans),
    }
}

/// Run the comparison on a medium-load Bing workload.
pub fn run(n_jobs: usize, seed: u64) -> Vec<NormPoint> {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, n_jobs, seed).generate();
    let cfg = SimConfig::new(PAPER_M);
    let cfg_free = SimConfig::new(PAPER_M).with_free_steals();
    vec![
        profile("FIFO", &inst, &simulate_fifo(&inst, &cfg)),
        profile("EQUI", &inst, &simulate_equi(&inst, &cfg)),
        profile(
            "steal-16-first",
            &inst,
            &simulate_worksteal(&inst, &cfg_free, StealPolicy::StealKFirst { k: 16 }, seed),
        ),
        profile(
            "admit-first",
            &inst,
            &simulate_worksteal(&inst, &cfg_free, StealPolicy::AdmitFirst, seed),
        ),
    ]
}

/// Render rows.
pub fn table(points: &[NormPoint]) -> Table {
    let mut t = Table::new([
        "scheduler",
        "l1 (sum)",
        "l2",
        "linf (max)",
        "max F/W",
        "max F/P",
    ]);
    for p in points {
        t.row([
            p.scheduler.clone(),
            format!("{:.0}", p.l1),
            format!("{:.0}", p.l2),
            format!("{:.0}", p.linf),
            format!("{:.2}", p.stretch_work),
            format!("{:.2}", p.stretch_span),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_profiles_are_consistent() {
        let pts = run(2_000, 9);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            // ℓ_k is non-increasing in k and all values positive.
            assert!(p.l1 >= p.l2 && p.l2 >= p.linf, "{p:?}");
            assert!(p.linf > 0.0);
            assert!(
                p.stretch_work > 0.0 && p.stretch_span >= p.stretch_work,
                "{p:?}"
            );
        }
    }

    #[test]
    fn fifo_wins_the_tail() {
        // FIFO is the max-flow policy: its ℓ_∞ should be the smallest of
        // the four schedulers on this seeded workload.
        let pts = run(2_000, 5);
        let fifo = pts.iter().find(|p| p.scheduler == "FIFO").unwrap();
        for p in &pts {
            assert!(
                fifo.linf <= p.linf * 1.01,
                "FIFO linf {} vs {} {}",
                fifo.linf,
                p.scheduler,
                p.linf
            );
        }
    }

    #[test]
    fn table_renders() {
        let pts = run(500, 1);
        assert!(table(&pts).render().contains("linf (max)"));
    }
}
