//! Ablation (end of Section 4 + Section 6 discussion): the effect of the
//! steal-k-first parameter `k`.
//!
//! Theoretically smaller `k` is better (admit-first has the best bound);
//! empirically *larger* `k` approximates FIFO and wins, because with `k ≥ m`
//! a worker almost surely finds stealable work of an already-admitted job
//! before opening a new one. This sweep reproduces that reversal.

use super::{jobs_per_point, PAPER_M};
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// One `(k, qps)` data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct StealKPoint {
    /// The k parameter (0 = admit-first).
    pub k: u32,
    /// Queries per second.
    pub qps: f64,
    /// Max flow in ms.
    pub max_flow_ms: f64,
    /// OPT in ms.
    pub opt_ms: f64,
}

impl StealKPoint {
    /// Ratio to OPT.
    pub fn ratio(&self) -> f64 {
        self.max_flow_ms / self.opt_ms
    }
}

/// Default k values swept.
pub fn default_ks() -> Vec<u32> {
    vec![0, 1, 4, 16, 64]
}

/// Run the sweep.
pub fn run(ks: &[u32], qps_list: &[f64], seed: u64) -> Vec<StealKPoint> {
    run_sized(ks, qps_list, seed, jobs_per_point())
}

/// Run with an explicit job count.
pub fn run_sized(ks: &[u32], qps_list: &[f64], seed: u64, n_jobs: usize) -> Vec<StealKPoint> {
    let cfg = SimConfig::new(PAPER_M).with_free_steals();
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    // Parallelize over (qps, k) pairs; the instance is regenerated per pair
    // rather than shared so every point is self-contained. Input order is
    // preserved, so rows come out exactly as the serial nested loop emitted
    // them.
    let points: Vec<(f64, u32)> = qps_list
        .iter()
        .flat_map(|&qps| ks.iter().map(move |&k| (qps, k)))
        .collect();
    super::par_map(points, |(qps, k)| {
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
        let opt_ms = opt_max_flow(&inst, PAPER_M).to_f64() * to_ms;
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        let flow = simulate_worksteal(&inst, &cfg, policy, seed ^ ((k as u64) << 16)).max_flow();
        StealKPoint {
            k,
            qps,
            max_flow_ms: flow.to_f64() * to_ms,
            opt_ms,
        }
    })
}

/// Render rows.
pub fn table(points: &[StealKPoint]) -> Table {
    let mut t = Table::new(["QPS", "k", "max flow (ms)", "OPT (ms)", "ratio"]);
    for p in points {
        t.row([
            format!("{:.0}", p.qps),
            p.k.to_string(),
            format!("{:.2}", p.max_flow_ms),
            format!("{:.2}", p.opt_ms),
            format!("{:.2}", p.ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_dominate_opt() {
        let pts = run_sized(&[0, 16], &[1000.0], 3, 2_000);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.ratio() >= 1.0, "{p:?}");
        }
    }

    #[test]
    fn high_load_prefers_large_k() {
        // The paper's empirical claim: at high load admit-first (k=0) is
        // worse than steal-16-first.
        let pts = run_sized(&[0, 16], &[1200.0], 7, 8_000);
        let k0 = pts.iter().find(|p| p.k == 0).unwrap();
        let k16 = pts.iter().find(|p| p.k == 16).unwrap();
        assert!(
            k16.max_flow_ms <= k0.max_flow_ms,
            "steal-16-first ({}) should beat admit-first ({}) at high load",
            k16.max_flow_ms,
            k0.max_flow_ms
        );
    }

    #[test]
    fn table_renders() {
        let pts = run_sized(&[0], &[800.0], 1, 300);
        assert!(table(&pts).render().contains("ratio"));
    }
}
