//! Figure 3: the request-work distributions of the two real workloads
//! (Bing web search and the finance option-pricing server), rendered as
//! histograms of sampled work in milliseconds.

use parflow_metrics::Histogram;
use parflow_workloads::{bing, finance, WorkDistribution, TICKS_PER_SECOND};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Histogram of `n` sampled request sizes (in ms) from a distribution.
pub fn sample_histogram<D: WorkDistribution>(
    dist: &D,
    n: usize,
    seed: u64,
    lo_ms: f64,
    hi_ms: f64,
    bins: usize,
) -> Histogram {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut h = Histogram::new(lo_ms, hi_ms, bins);
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    for _ in 0..n {
        h.add(dist.sample(&mut rng) as f64 * to_ms);
    }
    h
}

/// Figure 3(a): the Bing work distribution over 5–205 ms.
pub fn bing_histogram(n: usize, seed: u64) -> Histogram {
    sample_histogram(&bing(), n, seed, 0.0, 210.0, 21)
}

/// Figure 3(b): the finance work distribution over 4–52 ms.
pub fn finance_histogram(n: usize, seed: u64) -> Histogram {
    sample_histogram(&finance(), n, seed, 0.0, 56.0, 14)
}

/// Render both panels as ASCII (what `repro fig3` prints).
pub fn render(n: usize, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("Figure 3(a): Bing search server request work distribution (ms)\n");
    out.push_str(&bing_histogram(n, seed).render(40));
    out.push_str("\nFigure 3(b): Finance server request work distribution (ms)\n");
    out.push_str(&finance_histogram(n, seed).render(40));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bing_mass_concentrated_low() {
        let h = bing_histogram(50_000, 1);
        let probs = h.probabilities();
        // First bin (0–10 ms) holds the 5 ms mode: > 50 % of mass.
        assert!(probs[0].1 > 0.5, "first-bin mass {}", probs[0].1);
        // Tail reaches past 100 ms.
        let tail: f64 = probs
            .iter()
            .filter(|&&(c, _)| c > 100.0)
            .map(|&(_, p)| p)
            .sum();
        assert!(tail > 0.0, "expected mass past 100 ms");
    }

    #[test]
    fn finance_mode_is_interior() {
        let h = finance_histogram(50_000, 2);
        let probs = h.probabilities();
        // Mode bin should be the 8–12 ms region, not the first bin.
        let (argmax, _) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
            .unwrap();
        assert!(
            argmax >= 1,
            "finance mode should be interior, got bin {argmax}"
        );
        // Support ends by 52 ms (the 52 ms bin is centered at 54).
        let beyond: f64 = probs
            .iter()
            .filter(|&&(c, _)| c > 54.5)
            .map(|&(_, p)| p)
            .sum();
        assert_eq!(beyond, 0.0);
    }

    #[test]
    fn render_contains_both_panels() {
        let s = render(2_000, 3);
        assert!(s.contains("Figure 3(a)"));
        assert!(s.contains("Figure 3(b)"));
        assert!(s.contains('#'));
    }
}
