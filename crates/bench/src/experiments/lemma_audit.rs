//! Lemma audit: measure the proof-level quantities of Sections 3–4 on real
//! schedules and report how much slack the analysis leaves.
//!
//! * Proposition 2.1 bound: worst ratio of non-full rounds to span across
//!   jobs for the centralized schedulers (proved ≤ 1; measured ≪ 1);
//! * Lemma 4.5 constant: worst normalized idling `idling/(m·P_i + ln n)`
//!   under work stealing (proved ≤ 64 w.h.p.; measured ≪ 64);
//! * Theorem 4.1 accounting: executed vs available work over `[t_β, c_i]`
//!   (feasibility demands executed ≤ available).

use super::PAPER_M;
use parflow_core::{
    check_greedy_nonfull_bound, interval_accounting, run_priority, run_worksteal, ws_idling_report,
    Fifo, RoundActivity, SimConfig, StealPolicy,
};
use parflow_metrics::Table;
use parflow_time::Rational;
use parflow_workloads::{DistKind, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// The audit summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LemmaAudit {
    /// Worst job-wise ratio non-full-rounds / span under FIFO (bound: 1).
    pub fifo_nonfull_worst: f64,
    /// Whether the deterministic bound held exactly (it must).
    pub fifo_bound_ok: bool,
    /// Worst normalized idling under steal-k-first (Lemma 4.5 bound: 64).
    pub ws_idling_worst: f64,
    /// Executed work in `[t_β, c_i]` under steal-k-first.
    pub executed: u64,
    /// Available work in the same window.
    pub available: u64,
}

/// Run the audit on a loaded Bing workload.
pub fn run(n_jobs: usize, seed: u64) -> LemmaAudit {
    let qps = parflow_workloads::qps_for_utilization(DistKind::Bing, PAPER_M, 0.85);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
    let cfg = SimConfig::new(PAPER_M).with_trace();

    // FIFO non-full bound.
    let (fifo_r, fifo_t) = run_priority(&inst, &cfg, &Fifo);
    let fifo_t = fifo_t.expect("trace recorded");
    let fifo_bound_ok = check_greedy_nonfull_bound(&inst, &fifo_r, &fifo_t).is_ok();
    let activity = RoundActivity::from_trace(&fifo_t);
    let fifo_nonfull_worst = fifo_r
        .outcomes
        .iter()
        .map(|o| {
            let job = &inst.jobs()[o.job as usize];
            let from = fifo_r.speed.first_round_at_or_after(job.arrival);
            activity.nonfull_rounds_in(from, o.completion_round) as f64 / job.span() as f64
        })
        .fold(0.0, f64::max);

    // Work-stealing idling + interval accounting.
    let (ws_r, ws_t) = run_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, seed);
    let ws_t = ws_t.expect("trace recorded");
    let idling = ws_idling_report(&inst, &ws_r, &ws_t);
    let acc =
        interval_accounting(&inst, &ws_r, &ws_t, Rational::new(1, 10)).expect("non-empty instance");

    LemmaAudit {
        fifo_nonfull_worst,
        fifo_bound_ok,
        ws_idling_worst: idling.worst,
        executed: acc.executed,
        available: acc.available,
    }
}

/// Render the audit.
pub fn table(a: &LemmaAudit) -> Table {
    let mut t = Table::new(["quantity", "measured", "proof bound", "holds"]);
    t.row([
        "FIFO non-full rounds / span (worst job)".to_string(),
        format!("{:.3}", a.fifo_nonfull_worst),
        "1 (Prop. 2.1)".to_string(),
        a.fifo_bound_ok.to_string(),
    ]);
    t.row([
        "WS idling / (m*P_i + ln n) (worst job)".to_string(),
        format!("{:.3}", a.ws_idling_worst),
        "64 (Lemma 4.5)".to_string(),
        (a.ws_idling_worst <= 64.0).to_string(),
    ]);
    t.row([
        "WS executed work in [t_beta, c_i]".to_string(),
        a.executed.to_string(),
        format!("<= available ({})", a.available),
        (a.executed <= a.available).to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_passes_all_bounds() {
        let a = run(2_000, 7);
        assert!(a.fifo_bound_ok);
        assert!(a.fifo_nonfull_worst <= 1.0);
        assert!(a.ws_idling_worst <= 64.0, "{}", a.ws_idling_worst);
        assert!(a.executed <= a.available);
    }

    #[test]
    fn table_renders() {
        let a = run(300, 1);
        let s = table(&a).render();
        assert!(s.contains("Prop. 2.1"));
        assert!(s.contains("Lemma 4.5"));
    }
}
