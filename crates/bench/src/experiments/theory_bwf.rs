//! Theorem 7.1 validation: Biggest-Weight-First with `(1+ε)` speed is
//! `O(1/ε²)`-competitive for maximum *weighted* flow time.
//!
//! We build weighted instances where weights are uncorrelated with work
//! (as the paper stresses), run BWF at speed `1+ε` and report
//! `max weighted flow / weighted lower bound` against the proof ceiling
//! `3/ε²`. A FIFO column shows why weight-awareness matters: FIFO's
//! weighted ratio grows with the weight range while BWF's stays flat.

use super::PAPER_M;
use parflow_core::{opt_weighted_lower_bound, simulate_bwf, simulate_fifo, SimConfig};
use parflow_dag::{Instance, Job};
use parflow_metrics::Table;
use parflow_time::Speed;
use parflow_workloads::{DistKind, ShapeKind, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One ε data point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BwfPoint {
    /// ε (speed = 1 + ε).
    pub epsilon: f64,
    /// BWF max weighted flow (ticks·weight).
    pub bwf: f64,
    /// FIFO max weighted flow at the same speed (comparison).
    pub fifo: f64,
    /// Weighted lower bound on OPT.
    pub lower_bound: f64,
    /// BWF ratio to the lower bound.
    pub bwf_ratio: f64,
    /// FIFO ratio to the lower bound.
    pub fifo_ratio: f64,
    /// Proof ceiling `3/ε²`.
    pub bound: f64,
}

/// Attach random weights in `1..=max_weight` (uncorrelated with work).
pub fn weighted_instance(n_jobs: usize, max_weight: u64, seed: u64) -> Instance {
    let spec = WorkloadSpec {
        dist: DistKind::Bing,
        shape: ShapeKind::ParallelFor { grain: 10 },
        qps: Some(parflow_workloads::qps_for_utilization(
            DistKind::Bing,
            PAPER_M,
            0.85,
        )),
        period_ticks: 0,
        n_jobs,
        seed,
    };
    let base = spec.generate();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
    let jobs = base
        .jobs()
        .iter()
        .map(|j| {
            Job::weighted(
                j.id,
                j.arrival,
                rng.gen_range(1..=max_weight),
                Arc::clone(&j.dag),
            )
        })
        .collect();
    Instance::new(jobs)
}

/// ε values (exact fractions).
pub const EPSILONS: [(u64, u64); 4] = [(1, 5), (1, 2), (1, 1), (2, 1)];

/// Run the ε sweep.
pub fn run(n_jobs: usize, max_weight: u64, seed: u64) -> Vec<BwfPoint> {
    let inst = weighted_instance(n_jobs, max_weight, seed);
    let lb = opt_weighted_lower_bound(&inst, PAPER_M).to_f64();
    EPSILONS
        .iter()
        .map(|&(en, ed)| {
            let speed = Speed::augmented(en, ed);
            let cfg = SimConfig::new(PAPER_M).with_speed(speed);
            let bwf = simulate_bwf(&inst, &cfg).max_weighted_flow().to_f64();
            let fifo = simulate_fifo(&inst, &cfg).max_weighted_flow().to_f64();
            let epsilon = en as f64 / ed as f64;
            BwfPoint {
                epsilon,
                bwf,
                fifo,
                lower_bound: lb,
                bwf_ratio: bwf / lb,
                fifo_ratio: fifo / lb,
                bound: 3.0 / (epsilon * epsilon),
            }
        })
        .collect()
}

/// Render rows.
pub fn table(points: &[BwfPoint]) -> Table {
    let mut t = Table::new([
        "epsilon",
        "BWF wF",
        "FIFO wF",
        "weighted LB",
        "BWF ratio",
        "FIFO ratio",
        "bound 3/eps^2",
    ]);
    for p in points {
        t.row([
            format!("{:.2}", p.epsilon),
            format!("{:.0}", p.bwf),
            format!("{:.0}", p.fifo),
            format!("{:.0}", p.lower_bound),
            format!("{:.2}", p.bwf_ratio),
            format!("{:.2}", p.fifo_ratio),
            format!("{:.1}", p.bound),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_instance_has_uncorrelated_weights() {
        let inst = weighted_instance(200, 100, 3);
        let weights: Vec<u64> = inst.jobs().iter().map(|j| j.weight).collect();
        assert!(weights.iter().any(|&w| w > 50));
        assert!(weights.iter().any(|&w| w <= 50));
    }

    #[test]
    fn bwf_dominates_lower_bound_and_respects_ceiling() {
        let pts = run(1_500, 64, 5);
        for p in &pts {
            // With (1+ε) speed BWF may beat the unit-speed bound (< 1);
            // the theorem only caps the ratio above.
            assert!(p.bwf_ratio > 0.0, "{p:?}");
            assert!(p.bwf_ratio <= p.bound, "Theorem 7.1 violated: {p:?}");
        }
    }

    #[test]
    fn bwf_beats_fifo_on_weighted_objective() {
        // With a wide weight range, at least at the tightest speed, BWF's
        // weighted max flow should not exceed FIFO's.
        let pts = run(1_500, 1_000, 11);
        let p = &pts[0];
        assert!(
            p.bwf <= p.fifo * 1.05,
            "BWF should win on weighted flow: bwf {} vs fifo {}",
            p.bwf,
            p.fifo
        );
    }

    #[test]
    fn table_renders() {
        let pts = run(300, 16, 1);
        assert!(table(&pts).render().contains("BWF ratio"));
    }
}
