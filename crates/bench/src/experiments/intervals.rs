//! Figure 1: the interval decomposition of an execution trace.
//!
//! Runs a loaded workload, finds the maximum-flow job and reconstructs the
//! `[t', t_β], …, [t_0, r_i], [r_i, c_i]` interval set used by the
//! Section 4/7 proofs, printing each interval with its defining job.

use super::PAPER_M;
use parflow_core::{analyze_intervals, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_time::Rational;
use parflow_workloads::{DistKind, WorkloadSpec};

/// Run the decomposition on a high-load Bing workload; `epsilon` is the
/// analysis ε (numerator, denominator).
pub fn run(
    n_jobs: usize,
    seed: u64,
    epsilon: (i128, i128),
) -> Option<parflow_core::IntervalAnalysis> {
    let qps = parflow_workloads::qps_for_utilization(DistKind::Bing, PAPER_M, 0.9);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
    let cfg = SimConfig::new(PAPER_M).with_free_steals();
    let result = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, seed);
    analyze_intervals(&result, Rational::new(epsilon.0, epsilon.1))
}

/// Render the analysis as a table.
pub fn table(a: &parflow_core::IntervalAnalysis) -> Table {
    let mut t = Table::new(["interval", "start", "end", "length", "defining job"]);
    let beta = a.beta();
    for (i, iv) in a.intervals.iter().enumerate() {
        let label = if i + 1 == a.intervals.len() {
            "[r_i, c_i]".to_string()
        } else {
            format!("[t_{}, t_{}]", beta - i, beta - i - 1)
        };
        t.row([
            label,
            format!("{:.1}", iv.start.to_f64()),
            format!("{:.1}", iv.end.to_f64()),
            format!("{:.1}", iv.len().to_f64()),
            iv.defining_job
                .map(|j| j.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_runs_and_renders() {
        let a = run(2_000, 13, (1, 10)).expect("non-empty instance");
        assert!(!a.intervals.is_empty());
        let t = table(&a);
        assert_eq!(t.len(), a.intervals.len());
        assert!(t.render().contains("[r_i, c_i]"));
    }

    #[test]
    fn final_interval_is_flow() {
        let a = run(1_000, 3, (1, 10)).unwrap();
        let last = a.intervals.last().unwrap();
        assert_eq!(last.len(), a.flow);
    }
}
