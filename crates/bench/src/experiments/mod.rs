//! Experiment drivers: one module per paper table/figure plus theory
//! validations and ablations. Each driver returns structured rows and can
//! render a `parflow_metrics::Table`, so the `repro` binary and the
//! Criterion benches share the exact same code paths.

pub mod backlog;
pub mod burst;
pub mod equi_ablation;
pub mod fault_resilience;
pub mod fig2;
pub mod fig3;
pub mod grain;
pub mod intervals;
pub mod lemma_audit;
pub mod lower_bound;
pub mod norms;
pub mod scaling;
pub mod steal_amount;
pub mod steal_k;
pub mod theory_bwf;
pub mod theory_fifo;
pub mod theory_ws;
pub mod variance;
pub mod victim_ablation;
pub mod weighted_ws;

/// The paper's machine size: dual 8-core Xeon, m = 16.
pub const PAPER_M: usize = 16;

/// The paper's steal-k-first parameter (Section 6: "we use k = 16").
pub const PAPER_K: u32 = 16;

/// Number of jobs per experiment point. The paper uses 100 000; the default
/// here is 20 000 to keep `cargo bench` turnaround sane. Set
/// `PARFLOW_JOBS=100000` to run at paper scale.
pub fn jobs_per_point() -> usize {
    std::env::var("PARFLOW_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Base seed for all experiments (deterministic; override with
/// `PARFLOW_SEED`).
pub fn base_seed() -> u64 {
    std::env::var("PARFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x9af1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(PAPER_M, 16);
        assert_eq!(PAPER_K, 16);
        assert!(jobs_per_point() > 0);
    }
}
