//! Experiment drivers: one module per paper table/figure plus theory
//! validations and ablations. Each driver returns structured rows and can
//! render a `parflow_metrics::Table`, so the `repro` binary and the
//! Criterion benches share the exact same code paths.

pub mod backlog;
pub mod burst;
pub mod equi_ablation;
pub mod fault_resilience;
pub mod fig2;
pub mod fig3;
pub mod grain;
pub mod intervals;
pub mod lemma_audit;
pub mod lower_bound;
pub mod norms;
pub mod scaling;
pub mod serve_soak;
pub mod steal_amount;
pub mod steal_k;
pub mod theory_bwf;
pub mod theory_fifo;
pub mod theory_ws;
pub mod variance;
pub mod victim_ablation;
pub mod weighted_ws;

/// The paper's machine size: dual 8-core Xeon, m = 16.
pub const PAPER_M: usize = 16;

/// The paper's steal-k-first parameter (Section 6: "we use k = 16").
pub const PAPER_K: u32 = 16;

/// Number of jobs per experiment point. The paper uses 100 000; the default
/// here is 20 000 to keep `cargo bench` turnaround sane. Set
/// `PARFLOW_JOBS=100000` to run at paper scale.
pub fn jobs_per_point() -> usize {
    std::env::var("PARFLOW_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

/// Base seed for all experiments (deterministic; override with
/// `PARFLOW_SEED`).
pub fn base_seed() -> u64 {
    std::env::var("PARFLOW_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x9af1)
}

/// Worker threads for [`par_map`]: `PARFLOW_THREADS` if set (≥ 1), else the
/// machine's available parallelism. `PARFLOW_THREADS=1` forces the serial
/// path (useful for profiling a single experiment point).
pub fn par_threads() -> usize {
    std::env::var("PARFLOW_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &usize| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Order-preserving parallel map over independent experiment points.
///
/// Each point owns its instance generation and its simulator RNG seed, so
/// evaluation order cannot affect results — only wall clock. Results are
/// returned in input order, which keeps every table, CSV and stdout byte
/// stream identical to the serial path regardless of thread count or
/// scheduling jitter. Workers pull indexed items off a shared stack; a
/// panic in `f` propagates out of the scope.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_with(par_threads(), items, f)
}

/// [`par_map`] with an explicit thread count instead of the
/// `PARFLOW_THREADS` environment lookup. The sweep harness threads its
/// `--threads` option through here so determinism tests can compare
/// thread counts within one process without racing on env state.
pub fn par_map_with<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = std::sync::Mutex::new(items.into_iter().enumerate().rev().collect::<Vec<_>>());
    let slots = std::sync::Mutex::new((0..n).map(|_| None).collect::<Vec<Option<U>>>());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop();
                match next {
                    Some((i, item)) => {
                        let out = f(item);
                        slots.lock().expect("slots lock")[i] = Some(out);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_inner()
        .expect("no worker panicked")
        .into_iter()
        .map(|o| o.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(PAPER_M, 16);
        assert_eq!(PAPER_K, 16);
        assert!(jobs_per_point() > 0);
        assert!(par_threads() >= 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100u64).collect(), |i| i * 3);
        assert_eq!(out, (0..100u64).map(|i| i * 3).collect::<Vec<_>>());
        let empty: Vec<u64> = par_map(Vec::new(), |i: u64| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn par_map_matches_serial_under_contention() {
        // Uneven per-item cost so workers finish out of order.
        let work = |i: u64| -> u64 { (0..(i % 7) * 1000).fold(i, |a, b| a ^ b.wrapping_mul(a)) };
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|&i| work(i)).collect();
        assert_eq!(par_map(items, work), serial);
    }
}
