//! Ablation: what the Lemma 5.1 lower bound actually depends on.
//!
//! The Ω(log n) construction is usually attributed to the *randomization*
//! of victim selection, but measuring it decomposes the effect:
//!
//! * **uniform victims, unit-cost steals** (the paper's model): with
//!   probability `≈ e^{−m/10}` every thief misses the loaded deque long
//!   enough that a gadget runs fully sequentially → max flow `m/10 + 1`.
//! * **round-robin scan, unit-cost steals**: staggered deterministic scans
//!   guarantee exactly one thief probes the loaded deque per round — but
//!   that is still only *one extra stolen task per round*, so the gadget
//!   drains at rate 2 and max flow is still `Θ(m)` (≈ half the uniform
//!   value). Determinism alone does **not** collapse the bound; unit-cost
//!   steals cap steal bandwidth.
//! * **uniform victims, free steals** (the systems model): thieves retry
//!   within the step, all children are stolen the moment they appear, and
//!   max flow collapses to ≈ span + 1 regardless of `m`.
//!
//! Conclusion: the lower bound needs *both* randomized victims and
//! unit-time steals — which is exactly the theory model the paper states
//! it in, and why the tiny-job pathology never shows up in the TBB
//! experiments of Section 6.

use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::lower_bound_instance;
use serde::{Deserialize, Serialize};

/// One row: the adversarial instance under the three machine models.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VictimPoint {
    /// Processors.
    pub m: usize,
    /// Jobs.
    pub n: usize,
    /// Max flow: uniform random victims, unit-cost steals (paper model).
    pub uniform_unit: f64,
    /// Max flow: round-robin scan, unit-cost steals.
    pub scan_unit: f64,
    /// Max flow: uniform random victims, free steals (systems model).
    pub uniform_free: f64,
    /// OPT (= 2).
    pub opt: f64,
}

/// Run the sweep (same sizing as the lower-bound experiment).
pub fn run(ms: &[usize], max_n: usize, seed: u64) -> Vec<VictimPoint> {
    super::par_map(ms.to_vec(), |m| {
        let n = super::lower_bound::jobs_for_m(m, max_n);
        let inst = lower_bound_instance(n, m);
        let flow = |cfg: &SimConfig| {
            simulate_worksteal(&inst, cfg, StealPolicy::AdmitFirst, seed ^ m as u64)
                .max_flow()
                .to_f64()
        };
        VictimPoint {
            m,
            n,
            uniform_unit: flow(&SimConfig::new(m)),
            scan_unit: flow(&SimConfig::new(m).with_victim_scan()),
            uniform_free: flow(&SimConfig::new(m).with_free_steals()),
            opt: opt_max_flow(&inst, m).to_f64().max(2.0),
        }
    })
}

/// Render rows.
pub fn table(points: &[VictimPoint]) -> Table {
    let mut t = Table::new([
        "m",
        "n",
        "uniform+unit (paper)",
        "scan+unit",
        "uniform+free (TBB-like)",
        "OPT",
    ]);
    for p in points {
        t.row([
            p.m.to_string(),
            p.n.to_string(),
            format!("{:.1}", p.uniform_unit),
            format!("{:.1}", p.scan_unit),
            format!("{:.1}", p.uniform_free),
            format!("{:.1}", p.opt),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_of_the_lower_bound() {
        let pts = run(&[40, 60], 20_000, 3);
        for p in &pts {
            // Paper model: some gadget goes (nearly) sequential.
            assert!(p.uniform_unit >= p.m as f64 / 10.0, "{p:?}");
            // Deterministic scan halves the damage but stays Θ(m): the
            // drain rate doubles (owner + one guaranteed steal per round).
            assert!(p.scan_unit <= p.uniform_unit, "{p:?}");
            assert!(p.scan_unit >= p.m as f64 / 20.0, "{p:?}");
            // Free steals collapse the bound to ≈ span + O(1).
            assert!(p.uniform_free <= 6.0, "{p:?}");
        }
        // The uniform+unit degradation grows with m; uniform+free does not.
        assert!(pts[1].uniform_unit > pts[0].uniform_unit);
        assert!(pts[1].uniform_free <= pts[0].uniform_free + 1.0);
    }

    #[test]
    fn table_renders() {
        let pts = run(&[20], 1_000, 1);
        assert!(table(&pts).render().contains("TBB-like"));
    }
}
