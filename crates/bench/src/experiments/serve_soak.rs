//! Sustained-QPS soak of the streaming admission service.
//!
//! The paper's schedulers assume every arriving job must eventually run;
//! a production admission tier does not. This experiment drives the
//! `parflow-serve` supervisor with a sustained Bing-distributed stream at
//! increasing target utilization — through saturation and into overload —
//! and measures the shape the service promises: under overload it *sheds*
//! (counted, bounded queue) and *rejects against the SLO* instead of
//! letting max flow time grow without bound, so the max virtual flow over
//! **admitted** jobs stays `<= SLO` at every load level while completed
//! work tracks admissions exactly (exactly-once accounting).
//!
//! Virtual flows come from the deterministic admission ledger, so every
//! number in this table is reproducible bit-for-bit from `(seed, stream)`
//! regardless of the worker fleet executing underneath.

use super::PAPER_M;
use parflow_core::OptTracker;
use parflow_metrics::Table;
use parflow_serve::protocol::Submission;
use parflow_serve::supervisor::{ServeConfig, Supervisor};
use parflow_workloads::{qps_for_utilization, DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// Flow-time SLO for the soak: 2 simulated seconds.
pub const SOAK_SLO_TICKS: u64 = 2 * TICKS_PER_SECOND as u64;

/// One utilization level of the soak sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SoakPoint {
    /// Target utilization of the modelled 16-slot machine.
    pub utilization: f64,
    /// The resulting arrival rate (jobs/s).
    pub qps: f64,
    /// Submissions offered.
    pub submitted: u64,
    /// Ledger admissions.
    pub admitted: u64,
    /// Percentage of submissions shed at the queue bound.
    pub shed_pct: f64,
    /// Percentage rejected against the SLO.
    pub rejected_pct: f64,
    /// p99 virtual flow over admitted jobs, in ms.
    pub p99_flow_ms: f64,
    /// Max virtual flow over admitted jobs, in ms.
    pub max_flow_ms: f64,
    /// Admitted jobs completed exactly once by the worker fleet.
    pub completed: u64,
    /// Whether max admitted flow met the SLO (must always hold).
    pub slo_ok: bool,
    /// Incremental OPT lower bound over the **offered** stream, in ms
    /// (the [`OptTracker`] fed per arrival: squashed-FIFO bound with
    /// span `⌈work/m⌉`, the floor any m-slot schedule pays). Under
    /// overload this grows without bound while the admitted max flow
    /// stays under the SLO — that gap is the value of shedding.
    pub opt_all_ms: f64,
    /// `max_flow_ms / opt_all_ms` (0 when the bound is 0). Below 1.0 in
    /// overload: admitted flows beat what an admit-everything OPT pays.
    pub flow_vs_opt: f64,
}

/// Default sweep: comfortable load, saturation, and 2x overload.
pub fn default_utils() -> Vec<f64> {
    vec![0.5, 0.8, 1.0, 1.4, 2.0]
}

/// Run the soak at an explicit stream length.
pub fn run_sized(utils: &[f64], seed: u64, n_jobs: usize) -> Vec<SoakPoint> {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let mut out = Vec::new();
    for &util in utils {
        let qps = qps_for_utilization(DistKind::Bing, PAPER_M, util);
        let spec = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed);
        let mut source = spec.job_source();
        let mut cfg = ServeConfig::new(4);
        cfg.capacity_slots = PAPER_M;
        cfg.queue_cap = 4 * PAPER_M;
        cfg.slo_ticks = Some(SOAK_SLO_TICKS);
        cfg.seed = seed;
        cfg.iters_per_unit = 1;
        let mut sup = Supervisor::new(cfg).expect("soak config is valid");
        let mut opt = OptTracker::new(PAPER_M);
        for _ in 0..n_jobs {
            let job = source.next_job();
            opt.on_arrival(job.arrival, job.work, job.work.div_ceil(PAPER_M as u64));
            sup.offer(Submission {
                id: job.index,
                arrival: job.arrival,
                work: job.work,
                poison: false,
            });
            sup.pump();
        }
        let report = sup.finish();
        let flows = report
            .merged
            .histograms
            .iter()
            .find(|h| h.name == "serve.virtual_flow_ticks");
        let (p99, max) = flows.map(|h| (h.p99, h.max)).unwrap_or((0.0, 0.0));
        let pct = |x: u64| 100.0 * x as f64 / report.submitted.max(1) as f64;
        let opt_all_ms = opt.combined_lower_bound().to_f64() * to_ms;
        out.push(SoakPoint {
            utilization: util,
            qps,
            submitted: report.submitted,
            admitted: report.admitted,
            shed_pct: pct(report.shed),
            rejected_pct: pct(report.rejected_slo),
            p99_flow_ms: p99 * to_ms,
            max_flow_ms: max * to_ms,
            completed: report.completed,
            slo_ok: max <= SOAK_SLO_TICKS as f64,
            opt_all_ms,
            flow_vs_opt: if opt_all_ms > 0.0 {
                max * to_ms / opt_all_ms
            } else {
                0.0
            },
        });
    }
    out
}

/// Render rows.
pub fn table(points: &[SoakPoint]) -> Table {
    let mut t = Table::new([
        "util",
        "qps",
        "admitted",
        "shed %",
        "rej-slo %",
        "p99 flow (ms)",
        "max flow (ms)",
        "opt-all (ms)",
        "flow/opt",
        "completed",
        "slo",
    ]);
    for p in points {
        t.row([
            format!("{:.2}", p.utilization),
            format!("{:.0}", p.qps),
            format!("{}/{}", p.admitted, p.submitted),
            format!("{:.1}", p.shed_pct),
            format!("{:.1}", p.rejected_pct),
            format!("{:.1}", p.p99_flow_ms),
            format!("{:.1}", p.max_flow_ms),
            format!("{:.1}", p.opt_all_ms),
            format!("{:.2}", p.flow_vs_opt),
            p.completed.to_string(),
            if p.slo_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_admits_everything() {
        let pts = run_sized(&[0.3], 3, 400);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.admitted, p.submitted);
        assert_eq!(p.completed, p.admitted);
        assert_eq!(p.shed_pct, 0.0);
        assert!(p.slo_ok);
        // The live OPT bound covers the whole offered stream.
        assert!(p.opt_all_ms > 0.0);
    }

    #[test]
    fn overload_sheds_but_admitted_flows_meet_the_slo() {
        let pts = run_sized(&[0.5, 2.5], 7, 600);
        let (light, heavy) = (&pts[0], &pts[1]);
        assert!(
            heavy.shed_pct + heavy.rejected_pct > 0.0,
            "2.5x overload must shed or reject: {heavy:?}"
        );
        assert!(heavy.admitted < heavy.submitted);
        // The liveness claim: even in overload, admitted max flow <= SLO
        // and everything admitted completes.
        for p in [light, heavy] {
            assert!(p.slo_ok, "SLO violated at util {}: {p:?}", p.utilization);
            assert_eq!(p.completed, p.admitted);
        }
    }

    #[test]
    fn soak_rows_are_deterministic() {
        let a = run_sized(&[1.2], 11, 300);
        let b = run_sized(&[1.2], 11, 300);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn table_renders() {
        let pts = run_sized(&[0.5, 2.0], 1, 200);
        let rendered = table(&pts).render();
        assert!(rendered.contains("shed %"));
        assert!(rendered.contains("ok"));
    }
}
