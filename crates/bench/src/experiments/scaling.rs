//! Machine-size scaling: max flow time vs `m` at *fixed utilization*.
//!
//! The paper evaluates one machine size (m = 16). A natural systems
//! question it leaves open is weak scaling: if QPS grows proportionally
//! with m (utilization held at ~65 %), does the max-flow gap between the
//! schedulers persist? Larger m gives work stealing more victims per job
//! (better) but also more jobs in flight (worse for admit-first).

use parflow_core::{opt_max_flow, simulate_batched, ReplicaSpec, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::{qps_for_utilization, DistKind, WorkloadSpec, TICKS_PER_SECOND};
use serde::{Deserialize, Serialize};

/// One machine size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Processors.
    pub m: usize,
    /// QPS used (scaled for fixed utilization).
    pub qps: f64,
    /// OPT (ms).
    pub opt_ms: f64,
    /// steal-16-first (ms).
    pub steal_ms: f64,
    /// admit-first (ms).
    pub admit_ms: f64,
}

/// Default machine sizes.
pub fn default_ms() -> Vec<usize> {
    vec![4, 8, 16, 32, 64]
}

/// Run the sweep at ~65 % utilization on the Bing workload.
pub fn run(ms: &[usize], n_jobs: usize, seed: u64) -> Vec<ScalingPoint> {
    let to_ms = 1000.0 / TICKS_PER_SECOND;
    super::par_map(ms.to_vec(), |m| {
        let qps = qps_for_utilization(DistKind::Bing, m, 0.65);
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, n_jobs, seed).generate();
        let cfg = SimConfig::new(m).with_free_steals();
        // Both policies run through one batched lane, so the arena and
        // worker-state columns grown for steal-16 are recycled for
        // admit-first (bit-identical to back-to-back `simulate_worksteal`).
        let specs = [
            ReplicaSpec::new(
                cfg.clone(),
                StealPolicy::StealKFirst { k: 16 },
                seed ^ m as u64,
            ),
            ReplicaSpec::new(cfg, StealPolicy::AdmitFirst, seed ^ m as u64),
        ];
        let pair = simulate_batched(&inst, &specs, 1);
        ScalingPoint {
            m,
            qps,
            opt_ms: opt_max_flow(&inst, m).to_f64() * to_ms,
            steal_ms: pair[0].max_flow().to_f64() * to_ms,
            admit_ms: pair[1].max_flow().to_f64() * to_ms,
        }
    })
}

/// Render rows.
pub fn table(points: &[ScalingPoint]) -> Table {
    let mut t = Table::new([
        "m",
        "QPS (util 65%)",
        "OPT (ms)",
        "steal-16 (ms)",
        "admit-first (ms)",
        "admit/steal16",
    ]);
    for p in points {
        t.row([
            p.m.to_string(),
            format!("{:.0}", p.qps),
            format!("{:.2}", p.opt_ms),
            format!("{:.2}", p.steal_ms),
            format!("{:.2}", p.admit_ms),
            format!("{:.2}", p.admit_ms / p.steal_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_utilization_across_m() {
        let pts = run(&[4, 16], 3_000, 5);
        // QPS scales linearly with m.
        assert!((pts[1].qps / pts[0].qps - 4.0).abs() < 1e-9);
        for p in &pts {
            assert!(p.steal_ms >= p.opt_ms * 0.99, "{p:?}");
            assert!(p.admit_ms >= p.opt_ms * 0.99, "{p:?}");
        }
    }

    #[test]
    fn steal16_beats_admit_at_scale() {
        let pts = run(&[32], 4_000, 7);
        assert!(pts[0].steal_ms <= pts[0].admit_ms, "{:?}", pts[0]);
    }

    #[test]
    fn table_renders() {
        let pts = run(&[4], 300, 1);
        assert!(table(&pts).render().contains("util 65%"));
    }
}
