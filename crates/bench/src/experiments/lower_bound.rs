//! The Lemma 5.1 lower bound: randomized work stealing is `Ω(log n)`
//! competitive for maximum flow time.
//!
//! Construction (Section 5): `n` identical tiny jobs — one unit root
//! enabling `m/10` independent unit tasks — released every `2m` steps with
//! `m = Θ(log n)` processors. A job that is never successfully stolen from
//! executes sequentially in `≈ m/10` steps, while OPT finishes every job in
//! 2 steps. Each round, all `m−1` idle thieves miss the single loaded deque
//! with probability `(1 − 1/(m−1))^{m−1} ≈ 1/e`, so a job goes fully
//! sequential with probability `≈ e^{−m/10}` and `n ≳ e^{m/10}` jobs
//! suffice to observe one w.h.p. (The paper's formal statement uses the
//! cruder constant `1/2e` and `n = 2^m`; the shape — max flow growing
//! linearly in `m = Θ(log n)` while OPT stays constant — is identical.)

use parflow_core::{opt_max_flow, simulate_fifo, simulate_worksteal, SimConfig, StealPolicy};
use parflow_metrics::Table;
use parflow_workloads::lower_bound_instance;
use serde::{Deserialize, Serialize};

/// One row of the lower-bound sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LbPoint {
    /// Number of processors (`m = Θ(log n)`).
    pub m: usize,
    /// Number of jobs.
    pub n: usize,
    /// Work stealing (admit-first) max flow in time steps.
    pub ws_max_flow: f64,
    /// FIFO max flow in time steps (stays ≈ 2).
    pub fifo_max_flow: f64,
    /// The OPT lower bound (= 2 for this instance).
    pub opt: f64,
}

impl LbPoint {
    /// Work stealing's competitive ratio on this instance.
    pub fn ws_ratio(&self) -> f64 {
        self.ws_max_flow / self.opt
    }
}

/// Number of jobs needed at `m` processors to observe a sequential
/// execution w.h.p.: `⌈40·e^{m/10}⌉`, clamped to `max_n`.
pub fn jobs_for_m(m: usize, max_n: usize) -> usize {
    let n = (40.0 * (m as f64 / 10.0).exp()).ceil() as usize;
    n.clamp(16, max_n)
}

/// Run the sweep over processor counts.
pub fn run(ms: &[usize], max_n: usize, seed: u64) -> Vec<LbPoint> {
    super::par_map(ms.to_vec(), |m| {
        let n = jobs_for_m(m, max_n);
        let inst = lower_bound_instance(n, m);
        let cfg = SimConfig::new(m);
        let ws = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed ^ m as u64);
        let fifo = simulate_fifo(&inst, &cfg);
        LbPoint {
            m,
            n,
            ws_max_flow: ws.max_flow().to_f64(),
            fifo_max_flow: fifo.max_flow().to_f64(),
            opt: opt_max_flow(&inst, m).to_f64().max(2.0),
        }
    })
}

/// Default sweep for `repro lower-bound`.
pub fn default_ms() -> Vec<usize> {
    vec![20, 40, 60, 80, 100]
}

/// Render rows.
pub fn table(points: &[LbPoint]) -> Table {
    let mut t = Table::new([
        "m (=Θ(log n))",
        "n jobs",
        "WS max flow",
        "FIFO max flow",
        "OPT",
        "WS ratio",
    ]);
    for p in points {
        t.row([
            p.m.to_string(),
            p.n.to_string(),
            format!("{:.1}", p.ws_max_flow),
            format!("{:.1}", p.fifo_max_flow),
            format!("{:.1}", p.opt),
            format!("{:.2}", p.ws_ratio()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_scale_exponentially_in_m() {
        assert!(jobs_for_m(20, 1_000_000) < jobs_for_m(40, 1_000_000));
        assert_eq!(jobs_for_m(200, 1000), 1000); // clamped
    }

    #[test]
    fn ws_ratio_grows_with_m() {
        // The core lower-bound phenomenon: WS max flow grows with m while
        // FIFO stays flat. Use modest sizes for test speed.
        let pts = run(&[20, 60], 20_000, 11);
        assert_eq!(pts.len(), 2);
        // FIFO finishes every gadget in ≈ 2 steps (span) at every m.
        for p in &pts {
            assert!(
                p.fifo_max_flow <= 4.0,
                "FIFO should stay near OPT, got {}",
                p.fifo_max_flow
            );
            assert!(p.ws_max_flow >= p.fifo_max_flow);
        }
        // WS degrades as m grows: at m=60 some job should execute (nearly)
        // sequentially, flow ≈ m/10 + admission ≫ flow at m=20.
        assert!(
            pts[1].ws_max_flow > pts[0].ws_max_flow,
            "expected growth: {} vs {}",
            pts[1].ws_max_flow,
            pts[0].ws_max_flow
        );
    }

    #[test]
    fn table_renders() {
        let pts = run(&[20], 1_000, 3);
        let t = table(&pts);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("WS ratio"));
    }
}
