//! Determinism proptests for the mega-sweep harness.
//!
//! The sweep's contract is that the aggregated jsonl store is a pure
//! function of the grid spec: byte-identical across fan-out thread
//! counts, and byte-identical between a fresh run and a `--resume` over
//! any prefix of a previous store — including a torn last line from a
//! crashed writer. These tests drive `run_sweep` directly with explicit
//! thread counts (no `PARFLOW_THREADS` env races) and random truncation
//! points.

use parflow_bench::sweep::aggregate::{cell_line, parse_cell_line, CellOutcome, STATUS_SIMULATED};
use parflow_bench::sweep::grid::SweepGrid;
use parflow_bench::sweep::{run_sweep, SweepOptions};
use proptest::prelude::*;
use std::sync::OnceLock;

fn opts(threads: usize) -> SweepOptions {
    SweepOptions {
        threads,
        prune_factor: 4.0,
        batch_lanes: 4,
        stream: false,
        certify: false,
    }
}

/// Small random grids: 1 dist × 2 loads × a random non-empty policy
/// subset × m ∈ {2,3} × seeds ≤ 2 × 30–70 jobs.
fn arb_grid() -> impl Strategy<Value = SweepGrid> {
    (1usize..16, 0usize..3, 2usize..=3, 1u32..=2, 30usize..=70).prop_map(
        |(polmask, upair, m, seeds, jobs)| {
            const POLICIES: [&str; 4] = ["fifo", "admit", "steal:2", "steal:8"];
            let picked: Vec<&str> = POLICIES
                .iter()
                .enumerate()
                .filter(|(i, _)| polmask & (1 << i) != 0)
                .map(|(_, p)| *p)
                .collect();
            let (u1, u2) = [("0.5", "0.9"), ("0.6", "1.1"), ("0.7", "0.8")][upair];
            let spec = format!(
                "dist=bing;util={u1},{u2};policy={};m={m};seeds={seeds};jobs={jobs}",
                picked.join(",")
            );
            SweepGrid::parse(&spec).expect("generated specs are valid")
        },
    )
}

/// Flow samples with injected NaN/±∞ poison mixed among finite values.
fn arb_poisoned_sample() -> impl Strategy<Value = f64> {
    (0usize..10, 0.0f64..1e6).prop_map(|(tag, v)| match tag {
        0 | 1 => f64::NAN,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        _ => v,
    })
}

/// One fixed grid swept once, shared across the truncation cases.
fn baseline() -> &'static (SweepGrid, String) {
    static CELL: OnceLock<(SweepGrid, String)> = OnceLock::new();
    CELL.get_or_init(|| {
        let grid = SweepGrid::parse(
            "dist=bing;util=0.5,0.9;policy=fifo,admit,steal:4;m=2;seeds=2;jobs=60",
        )
        .expect("baseline grid parses");
        let store = run_sweep(&grid, None, &opts(2))
            .expect("baseline sweep")
            .store();
        (grid, store)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PARFLOW_THREADS-equivalence: the serial fan-out and any parallel
    /// fan-out aggregate byte-identical stores (and identical summaries).
    #[test]
    fn store_bytes_invariant_across_thread_counts(grid in arb_grid(), threads in 2usize..=8) {
        let serial = run_sweep(&grid, None, &opts(1)).expect("serial sweep");
        let parallel = run_sweep(&grid, None, &opts(threads)).expect("parallel sweep");
        prop_assert_eq!(serial.store(), parallel.store());
        prop_assert_eq!(serial.summary, parallel.summary);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `--resume` over ANY byte-prefix of a store — torn header, torn
    /// mid-line, torn exactly at a line boundary, or the complete file —
    /// re-derives the byte-identical final store.
    #[test]
    fn resume_from_any_truncation_rederives_identical_store(
        frac in 0.0f64..=1.0,
        threads in 1usize..=4
    ) {
        let (grid, store) = baseline();
        // The store is pure ASCII, so any byte index is a char boundary.
        let cut = ((store.len() as f64) * frac) as usize;
        let torn = &store[..cut.min(store.len())];
        let resumed = run_sweep(grid, Some(torn), &opts(threads)).expect("resume");
        prop_assert_eq!(resumed.store(), store.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NaN/∞-injected cells aggregate without panicking, keep the
    /// poison counted out-of-band, and round-trip the store line
    /// byte-exactly (emit → parse → emit is the identity).
    #[test]
    fn nan_injected_cells_round_trip_without_panicking(
        samples in proptest::collection::vec(arb_poisoned_sample(), 0..20),
        opt_ms in 0.001f64..1e3
    ) {
        let (grid, _) = baseline();
        let spec = &grid.cells()[0];
        let out = CellOutcome::from_flows_ms(&samples, opt_ms);
        let finite = samples.iter().filter(|s| s.is_finite()).count();
        prop_assert_eq!(out.stats.map(|s| s.count).unwrap_or(0), finite);
        prop_assert_eq!(
            out.stats.map(|s| s.nonfinite).unwrap_or(out.nan),
            samples.len() - finite
        );
        let line = cell_line(spec, STATUS_SIMULATED, None, Some(&out));
        prop_assert!(!line.contains("NaN"), "no NaN literals in the store: {}", line);
        prop_assert!(!line.contains("inf"), "no inf literals in the store: {}", line);
        let parsed = parse_cell_line(&line).expect("own lines parse");
        prop_assert_eq!(parsed.outcome, Some(out));
        let again = cell_line(spec, STATUS_SIMULATED, None, parsed.outcome.as_ref());
        prop_assert_eq!(again, line);
    }
}
