//! Figure 2(c): log-normal synthetic workload — scheduler cost per QPS
//! level, plus the reproduced table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::fig2;
use parflow_core::{simulate_worksteal, SimConfig, StealPolicy};
use parflow_workloads::{DistKind, WorkloadSpec};
use std::hint::black_box;

const N_JOBS: usize = 4_000;
const M: usize = 16;

fn bench(c: &mut Criterion) {
    let pts = fig2::run_sized(DistKind::LogNormal, 7, N_JOBS, M);
    println!("\n{}\n", fig2::table(DistKind::LogNormal, &pts).render());

    let mut g = c.benchmark_group("fig2_lognormal");
    g.sample_size(10);
    for qps in fig2::paper_qps(DistKind::LogNormal) {
        let inst = WorkloadSpec::paper_fig2(DistKind::LogNormal, qps, N_JOBS, 7).generate();
        let cfg = SimConfig::new(M).with_free_steals();
        for (name, policy) in [
            ("steal16", StealPolicy::StealKFirst { k: 16 }),
            ("admit", StealPolicy::AdmitFirst),
        ] {
            g.bench_with_input(BenchmarkId::new(name, qps as u64), &inst, |b, inst| {
                b.iter(|| simulate_worksteal(black_box(inst), &cfg, policy, 42).max_flow())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
