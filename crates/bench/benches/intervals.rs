//! Figure 1: interval-decomposition analysis cost, plus a printed example
//! decomposition.

use criterion::{criterion_group, criterion_main, Criterion};
use parflow_bench::experiments::intervals;
use parflow_core::{analyze_intervals, simulate_worksteal, SimConfig, StealPolicy};
use parflow_time::Rational;
use parflow_workloads::{qps_for_utilization, DistKind, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    if let Some(a) = intervals::run(4_000, 7, (1, 10)) {
        println!(
            "\nmax-flow job J_{}: F_i = {:.1}, beta = {}\n{}\n",
            a.job,
            a.flow.to_f64(),
            a.beta(),
            intervals::table(&a).render()
        );
    }

    let qps = qps_for_utilization(DistKind::Bing, 16, 0.9);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 4_000, 7).generate();
    let cfg = SimConfig::new(16).with_free_steals();
    let result = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 7);

    let mut g = c.benchmark_group("intervals");
    g.bench_function("analyze_4k_jobs", |b| {
        b.iter(|| analyze_intervals(black_box(&result), Rational::new(1, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
