//! Lemma 5.1: the Ω(log n) lower-bound construction — simulation cost per
//! machine size, plus the reproduced separation table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::lower_bound;
use parflow_core::{simulate_fifo, simulate_worksteal, SimConfig, StealPolicy};
use parflow_workloads::lower_bound_instance;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pts = lower_bound::run(&[20, 40, 60], 50_000, 7);
    println!("\n{}\n", lower_bound::table(&pts).render());

    let mut g = c.benchmark_group("lb_logn");
    g.sample_size(10);
    for m in [20usize, 40] {
        let n = lower_bound::jobs_for_m(m, 5_000);
        let inst = lower_bound_instance(n, m);
        let cfg = SimConfig::new(m);
        g.bench_with_input(BenchmarkId::new("worksteal", m), &inst, |b, inst| {
            b.iter(|| {
                simulate_worksteal(black_box(inst), &cfg, StealPolicy::AdmitFirst, 13).max_flow()
            })
        });
        g.bench_with_input(BenchmarkId::new("fifo", m), &inst, |b, inst| {
            b.iter(|| simulate_fifo(black_box(inst), &cfg).max_flow())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
