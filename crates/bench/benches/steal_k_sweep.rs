//! Ablation: the steal-k-first parameter sweep — cost per k, plus the
//! reproduced k-vs-load table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::steal_k;
use parflow_core::{simulate_worksteal, SimConfig, StealPolicy};
use parflow_workloads::{DistKind, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pts = steal_k::run_sized(&steal_k::default_ks(), &[800.0, 1000.0, 1200.0], 7, 4_000);
    println!("\n{}\n", steal_k::table(&pts).render());

    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1200.0, 4_000, 7).generate();
    let cfg = SimConfig::new(16).with_free_steals();
    let mut g = c.benchmark_group("steal_k_sweep");
    g.sample_size(10);
    for k in steal_k::default_ks() {
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        g.bench_with_input(BenchmarkId::new("k", k), &inst, |b, inst| {
            b.iter(|| simulate_worksteal(black_box(inst), &cfg, policy, 11).max_flow())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
