//! Figure 2(a): Bing workload — benchmarks the three schedulers at each
//! QPS level and prints the reproduced table once.
//!
//! The Criterion measurements quantify simulator cost per point; the
//! printed rows are the paper reproduction (also available via
//! `cargo run -p parflow-bench --bin repro -- fig2-bing`).
//!
//! Each QPS level's instance is generated exactly once, outside every
//! measurement loop, and shared between the printed table and all three
//! bench groups — the numbers measure the engines, not the generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::fig2;
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_workloads::{DistKind, WorkloadSpec};
use std::hint::black_box;

const N_JOBS: usize = 4_000;
const M: usize = 16;
const SEED: u64 = 7;

fn bench(c: &mut Criterion) {
    let cfg = SimConfig::new(M).with_free_steals();
    let instances: Vec<_> = fig2::paper_qps(DistKind::Bing)
        .into_iter()
        .map(|qps| {
            (
                qps,
                WorkloadSpec::paper_fig2(DistKind::Bing, qps, N_JOBS, SEED).generate(),
            )
        })
        .collect();

    // Print the reproduced figure once, at bench scale, from the same
    // instances the measurement loops use.
    let pts: Vec<_> = instances
        .iter()
        .map(|(qps, inst)| fig2::point_for_instance(*qps, inst, &cfg, M, SEED))
        .collect();
    println!("\n{}\n", fig2::table(DistKind::Bing, &pts).render());

    let mut g = c.benchmark_group("fig2_bing");
    g.sample_size(10);
    for (qps, inst) in &instances {
        g.bench_with_input(BenchmarkId::new("steal16", *qps as u64), inst, |b, inst| {
            b.iter(|| {
                simulate_worksteal(
                    black_box(inst),
                    &cfg,
                    StealPolicy::StealKFirst { k: 16 },
                    42,
                )
                .max_flow()
            })
        });
        g.bench_with_input(BenchmarkId::new("admit", *qps as u64), inst, |b, inst| {
            b.iter(|| {
                simulate_worksteal(black_box(inst), &cfg, StealPolicy::AdmitFirst, 42).max_flow()
            })
        });
        g.bench_with_input(BenchmarkId::new("opt", *qps as u64), inst, |b, inst| {
            b.iter(|| opt_max_flow(black_box(inst), M))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
