//! Figure 2(a): Bing workload — benchmarks the three schedulers at each
//! QPS level and prints the reproduced table once.
//!
//! The Criterion measurements quantify simulator cost per point; the
//! printed rows are the paper reproduction (also available via
//! `cargo run -p parflow-bench --bin repro -- fig2-bing`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::fig2;
use parflow_core::{opt_max_flow, simulate_worksteal, SimConfig, StealPolicy};
use parflow_workloads::{DistKind, WorkloadSpec};
use std::hint::black_box;

const N_JOBS: usize = 4_000;
const M: usize = 16;

fn bench(c: &mut Criterion) {
    // Print the reproduced figure once, at bench scale.
    let pts = fig2::run_sized(DistKind::Bing, 7, N_JOBS, M);
    println!("\n{}\n", fig2::table(DistKind::Bing, &pts).render());

    let mut g = c.benchmark_group("fig2_bing");
    g.sample_size(10);
    for qps in fig2::paper_qps(DistKind::Bing) {
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, N_JOBS, 7).generate();
        let cfg = SimConfig::new(M).with_free_steals();
        g.bench_with_input(BenchmarkId::new("steal16", qps as u64), &inst, |b, inst| {
            b.iter(|| {
                simulate_worksteal(
                    black_box(inst),
                    &cfg,
                    StealPolicy::StealKFirst { k: 16 },
                    42,
                )
                .max_flow()
            })
        });
        g.bench_with_input(BenchmarkId::new("admit", qps as u64), &inst, |b, inst| {
            b.iter(|| {
                simulate_worksteal(black_box(inst), &cfg, StealPolicy::AdmitFirst, 42).max_flow()
            })
        });
        g.bench_with_input(BenchmarkId::new("opt", qps as u64), &inst, |b, inst| {
            b.iter(|| opt_max_flow(black_box(inst), M))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
