//! Theorem 4.1: steal-k-first at `(k+1+ε)` speed — cost per (k, n), plus
//! the reproduced normalized-flow table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::theory_ws;
use parflow_core::{simulate_worksteal, SimConfig, StealPolicy};
use parflow_time::Speed;
use parflow_workloads::{qps_for_utilization, DistKind, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pts = theory_ws::run(&[0, 2, 16], &[1_000, 4_000], 7);
    println!("\n{}\n", theory_ws::table(&pts).render());

    let mut g = c.benchmark_group("theory_ws");
    g.sample_size(10);
    let qps = qps_for_utilization(DistKind::Bing, 16, 0.9);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 4_000, 7).generate();
    for k in [0u32, 2, 16] {
        let speed = Speed::new(2 * (k as u64) + 3, 2);
        let cfg = SimConfig::new(16).with_speed(speed);
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        g.bench_with_input(BenchmarkId::new("steal_k", k), &inst, |b, inst| {
            b.iter(|| simulate_worksteal(black_box(inst), &cfg, policy, 5).max_flow())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
