//! Theorem 3.1: FIFO under speed augmentation — cost per ε, plus the
//! reproduced ratio table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::theory_fifo;
use parflow_core::{simulate_fifo, SimConfig};
use parflow_time::Speed;
use parflow_workloads::{qps_for_utilization, DistKind, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pts = theory_fifo::run(4_000, 7);
    println!("\n{}\n", theory_fifo::table(&pts).render());

    let qps = qps_for_utilization(DistKind::Bing, 16, 0.95);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 4_000, 7).generate();
    let mut g = c.benchmark_group("theory_fifo");
    g.sample_size(10);
    for (en, ed) in theory_fifo::EPSILONS {
        let cfg = SimConfig::new(16).with_speed(Speed::augmented(en, ed));
        g.bench_with_input(
            BenchmarkId::new("fifo", format!("eps_{en}_{ed}")),
            &inst,
            |b, inst| b.iter(|| simulate_fifo(black_box(inst), &cfg).max_flow()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
