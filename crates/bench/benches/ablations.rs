//! Ablation and extension experiments as benches: EQUI vs FIFO, victim
//! strategy, chunk grain, bursty arrivals, l_k norms and backlog dynamics.
//! Prints each reproduced table once, then measures the dominant runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::{backlog, burst, equi_ablation, grain, norms, victim_ablation};
use parflow_core::{simulate_equi, simulate_worksteal, SimConfig, StealPolicy};
use parflow_workloads::{lower_bound_instance, DistKind, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n== EQUI vs FIFO ==");
    println!(
        "{}",
        equi_ablation::table(&equi_ablation::run(&[800.0, 1000.0, 1200.0], 4_000, 7)).render()
    );
    println!("== victim strategy vs Lemma 5.1 ==");
    println!(
        "{}",
        victim_ablation::table(&victim_ablation::run(&[20, 40, 60], 30_000, 7)).render()
    );
    println!("== chunk grain ==");
    println!(
        "{}",
        grain::table(&grain::run(&grain::default_grains(), 1100.0, 4_000, 7)).render()
    );
    println!("== bursty arrivals ==");
    println!(
        "{}",
        burst::table(&burst::run(&burst::default_bursts(), 4_000, 7)).render()
    );
    println!("== l_k norms / stretch ==");
    println!("{}", norms::table(&norms::run(4_000, 7)).render());
    println!("== backlog dynamics ==");
    println!(
        "{}",
        backlog::table(&backlog::run(1200.0, 4_000, 7)).render()
    );

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 4_000, 7).generate();
    g.bench_function("equi_4k_jobs", |b| {
        let cfg = SimConfig::new(16);
        b.iter(|| simulate_equi(black_box(&inst), &cfg).max_flow())
    });
    let lb = lower_bound_instance(2_000, 40);
    for (name, cfg) in [
        ("lb_uniform_unit", SimConfig::new(40)),
        ("lb_scan_unit", SimConfig::new(40).with_victim_scan()),
        ("lb_uniform_free", SimConfig::new(40).with_free_steals()),
    ] {
        g.bench_with_input(BenchmarkId::new("victim", name), &lb, |b, lb| {
            b.iter(|| {
                simulate_worksteal(black_box(lb), &cfg, StealPolicy::AdmitFirst, 3).max_flow()
            })
        });
    }
    g.bench_function("sampled_backlog_run", |b| {
        let cfg = SimConfig::new(16).with_free_steals().with_sampling(64);
        b.iter(|| {
            simulate_worksteal(
                black_box(&inst),
                &cfg,
                StealPolicy::StealKFirst { k: 16 },
                7,
            )
            .samples
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
