//! Figure 3: work-distribution sampling cost (Bing, finance, log-normal),
//! plus the reproduced histograms.

use criterion::{criterion_group, criterion_main, Criterion};
use parflow_bench::experiments::fig3;
use parflow_workloads::{bing, finance, LogNormalDist, WorkDistribution};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}\n", fig3::render(100_000, 7));

    let mut g = c.benchmark_group("fig3_sampling");
    let bing_d = bing();
    let fin_d = finance();
    let ln_d = LogNormalDist::paper();
    g.bench_function("bing_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(bing_d.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    g.bench_function("finance_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(fin_d.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    g.bench_function("lognormal_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(ln_d.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
