//! Micro-benchmarks of the simulation substrates: engine round throughput,
//! DAG construction/unfolding, OPT computation, trace validation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parflow_core::{
    opt_max_flow, run_priority, simulate_fifo, simulate_worksteal, Fifo, SimConfig, StealPolicy,
};
use parflow_dag::{shapes, DagCursor, Instance, Job, UnitOutcome};
use parflow_workloads::{DistKind, WorkloadSpec};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 2_000, 3).generate();
    let work = inst.total_work();

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(work));
    g.bench_function("fifo_units_per_sec", |b| {
        let cfg = SimConfig::new(16);
        b.iter(|| simulate_fifo(black_box(&inst), &cfg).max_flow())
    });
    g.bench_function("worksteal_unit_cost_units_per_sec", |b| {
        let cfg = SimConfig::new(16);
        b.iter(|| {
            simulate_worksteal(
                black_box(&inst),
                &cfg,
                StealPolicy::StealKFirst { k: 16 },
                1,
            )
            .max_flow()
        })
    });
    g.bench_function("worksteal_free_units_per_sec", |b| {
        let cfg = SimConfig::new(16).with_free_steals();
        b.iter(|| {
            simulate_worksteal(
                black_box(&inst),
                &cfg,
                StealPolicy::StealKFirst { k: 16 },
                1,
            )
            .max_flow()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("substrates");
    g.bench_function("opt_2k_jobs", |b| {
        b.iter(|| opt_max_flow(black_box(&inst), 16))
    });
    g.bench_function("dag_fork_join_depth10", |b| {
        b.iter(|| shapes::fork_join(black_box(10), 4).total_work())
    });
    g.bench_function("dag_parallel_for_1k_chunks", |b| {
        b.iter(|| shapes::parallel_for(black_box(10_000), 1_000).span())
    });
    g.bench_function("cursor_full_unfold", |b| {
        let dag = shapes::fork_join(10, 4);
        b.iter(|| {
            let mut cur = DagCursor::new(&dag);
            while !cur.is_complete() {
                let v = cur.ready_nodes()[0];
                cur.claim(v).unwrap();
                while let UnitOutcome::InProgress = cur.execute_unit(&dag, v).unwrap() {}
            }
            cur.executed_units()
        })
    });
    g.bench_function("trace_validate_small", |b| {
        let dag = Arc::new(shapes::diamond(4, 2));
        let jobs: Vec<Job> = (0..50)
            .map(|i| Job::new(i, i as u64 * 3, dag.clone()))
            .collect();
        let small = Instance::new(jobs);
        let (_, trace) = run_priority(&small, &SimConfig::new(4).with_trace(), &Fifo);
        let trace = trace.unwrap();
        b.iter(|| trace.validate(black_box(&small)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
