//! The real crossbeam work-stealing executor: end-to-end latency of small
//! bursts under both admission policies. Kept deliberately small — results
//! depend on host core count (CI containers are often single-core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_runtime::{run_workload, JobSpec, RtPolicy, RuntimeConfig};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let workload: Vec<(Duration, JobSpec)> = (0..16)
        .map(|_| (Duration::ZERO, JobSpec::split(40_000, 4)))
        .collect();

    let mut g = c.benchmark_group("runtime_executor");
    g.sample_size(10);
    for (name, policy) in [
        ("admit_first", RtPolicy::AdmitFirst),
        ("steal_16_first", RtPolicy::StealKFirst { k: 16 }),
    ] {
        g.bench_with_input(BenchmarkId::new(name, workers), &workload, |b, workload| {
            let cfg = RuntimeConfig::new(workers, policy);
            b.iter(|| run_workload(&cfg, workload).max_flow())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
