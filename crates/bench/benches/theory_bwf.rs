//! Theorem 7.1: BWF under speed augmentation on weighted instances — cost
//! per ε, plus the reproduced weighted-ratio table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::theory_bwf;
use parflow_core::{simulate_bwf, simulate_fifo, SimConfig};
use parflow_time::Speed;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let pts = theory_bwf::run(4_000, 1_000, 7);
    println!("\n{}\n", theory_bwf::table(&pts).render());

    let inst = theory_bwf::weighted_instance(4_000, 1_000, 7);
    let mut g = c.benchmark_group("theory_bwf");
    g.sample_size(10);
    for (en, ed) in theory_bwf::EPSILONS {
        let cfg = SimConfig::new(16).with_speed(Speed::augmented(en, ed));
        g.bench_with_input(
            BenchmarkId::new("bwf", format!("eps_{en}_{ed}")),
            &inst,
            |b, inst| b.iter(|| simulate_bwf(black_box(inst), &cfg).max_weighted_flow()),
        );
    }
    let cfg1 = SimConfig::new(16).with_speed(Speed::augmented(1, 2));
    g.bench_function("fifo_baseline_eps_1_2", |b| {
        b.iter(|| simulate_fifo(black_box(&inst), &cfg1).max_weighted_flow())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
