//! Extension experiments as benches: machine scaling, seed variance,
//! steal-amount, and the distributed-BWF comparison. Prints each table
//! once, then measures the dominant simulation costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parflow_bench::experiments::{scaling, steal_amount, variance, weighted_ws};
use parflow_core::{simulate_bwf, simulate_worksteal, SimConfig, StealPolicy};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n== machine scaling ==");
    println!(
        "{}",
        scaling::table(&scaling::run(&[4, 16, 64], 4_000, 7)).render()
    );
    println!("== seed variance ==");
    println!(
        "{}",
        variance::table(&variance::run(1100.0, 4_000, 6, 7)).render()
    );
    println!("== steal amount ==");
    println!(
        "{}",
        steal_amount::table(&steal_amount::run(&[800.0], 4_000, 7)).render()
    );
    println!("== distributed BWF ==");
    println!(
        "{}",
        weighted_ws::table(&weighted_ws::run(&[1000.0], 4_000, 7)).render()
    );

    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    let inst = weighted_ws::weighted_instance(1000.0, 4_000, 7);
    g.bench_function("bwf_weighted_4k", |b| {
        let cfg = SimConfig::new(16);
        b.iter(|| simulate_bwf(black_box(&inst), &cfg).max_weighted_flow())
    });
    for (name, cfg) in [
        ("fifo_admission", SimConfig::new(16).with_free_steals()),
        (
            "weighted_admission",
            SimConfig::new(16)
                .with_free_steals()
                .with_weighted_admission(),
        ),
        (
            "half_steals",
            SimConfig::new(16).with_free_steals().with_half_steals(),
        ),
    ] {
        g.bench_with_input(BenchmarkId::new("ws", name), &inst, |b, inst| {
            b.iter(|| {
                simulate_worksteal(black_box(inst), &cfg, StealPolicy::StealKFirst { k: 16 }, 7)
                    .max_weighted_flow()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
