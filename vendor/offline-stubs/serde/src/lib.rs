//! Offline compile-only stand-in for `serde`.
//!
//! Provides the trait names the workspace bounds on (`Serialize`,
//! `Deserialize`, `de::DeserializeOwned`) as blanket-implemented marker
//! traits, plus no-op derive macros. Actual serialization is NOT
//! functional offline — `serde_json`'s stub returns errors — and tests
//! that need real round-trips detect this and skip (see
//! `vendor/offline-stubs/README.md`).

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Deserialization marker traits.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}

    pub use crate::Deserialize;
}

/// Serialization marker traits.
pub mod ser {
    pub use crate::Serialize;
}
