//! Offline functional mini-implementation of `proptest`.
//!
//! Re-implements the subset of the proptest API this workspace uses —
//! `proptest!` with `name in strategy` bindings, `ProptestConfig`,
//! strategies over ranges/tuples/`Just`/`any`/`prop_oneof!`/
//! `collection::vec`, `prop_map`, and the `prop_assert*`/`prop_assume!`
//! macros — as a plain deterministic sampler: each test runs
//! `config.cases` random cases from a seed derived from the test's name.
//!
//! It deliberately omits shrinking and failure persistence; a failing
//! case prints its panic message like any other test failure. Networked
//! builds resolve the real crate instead.

#![warn(missing_docs)]

pub mod strategy;

pub mod test_runner {
    //! Config and deterministic RNG for generated tests.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's `Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps offline suites fast while
            // still exercising the properties.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test RNG (seeded from the test's name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        /// RNG whose stream is a pure function of `test_name`.
        pub fn deterministic(test_name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            TestRng {
                inner: SmallRng::seed_from_u64(h),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length in `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `elem`, length uniform in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($args:tt)* ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $crate::__proptest_bind!(__rng, $($args)*);
                    $body
                }
            }
        )*
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)+) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)+);
    };
}

/// Assert within a property (maps to `assert!`; no shrinking offline).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip cases violating a precondition (moves to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_compose(x in 1u64..100, v in crate::collection::vec(0i32..5, 2..6),
                                   y in (0usize..4).prop_map(|v| v * 2)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assume!(x != 99);
            prop_assert!(y % 2 == 0 && y <= 6);
            prop_assert_ne!(x, 100);
        }

        #[test]
        fn oneof_and_any(choice in prop_oneof![Just(1u8), Just(7u8)], bits in any::<u64>()) {
            prop_assert!(choice == 1 || choice == 7);
            let _ = bits;
        }
    }

    #[test]
    fn deterministic_between_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..50 {
            assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
        }
    }
}
