//! Strategy trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore, SampleUniform};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of random values (no shrinking offline).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9, K / 10);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9, K / 10, L / 11);

/// Uniform choice over same-typed strategies (backs `prop_oneof!`).
#[derive(Clone, Debug)]
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Union over `arms` (must be non-empty).
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Types with a whole-domain strategy via [`any`].
pub trait ArbValue {
    /// Draw from the full domain.
    fn arb_value(rng: &mut TestRng) -> Self;
}

macro_rules! arb_primitive {
    ($($t:ty),+) => {$(
        impl ArbValue for $t {
            fn arb_value(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )+};
}
arb_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy over a type's full domain (backs `any::<T>()`).
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arb_value(rng)
    }
}

/// Whole-domain strategy for `T` (mirror of `proptest::prelude::any`).
pub fn any<T: ArbValue>() -> Any<T> {
    Any(PhantomData)
}

// Silence the unused-import lint if RngCore stops being needed: it is the
// trait that gives TestRng its `gen*` methods through `rand::Rng`.
#[allow(unused)]
fn _rngcore_in_scope(r: &mut TestRng) -> u64 {
    RngCore::next_u64(r)
}
