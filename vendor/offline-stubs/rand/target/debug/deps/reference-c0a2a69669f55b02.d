/root/repo/vendor/offline-stubs/rand/target/debug/deps/reference-c0a2a69669f55b02.d: tests/reference.rs

/root/repo/vendor/offline-stubs/rand/target/debug/deps/reference-c0a2a69669f55b02: tests/reference.rs

tests/reference.rs:
