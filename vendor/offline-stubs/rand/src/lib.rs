//! Offline stand-in for the `rand` crate (0.8.5 API subset).
//!
//! This workspace pins its golden tests to the exact random streams of
//! `rand` 0.8.5's `SmallRng` (xoshiro256++ seeded via SplitMix64) and its
//! Lemire-style uniform integer sampling. The container this repo is
//! developed in has no network access to crates.io, so this crate
//! re-implements the *subset* the workspace uses, bit-for-bit:
//!
//! * `SmallRng::seed_from_u64` — SplitMix64 expansion into xoshiro256++;
//! * `next_u32` / `next_u64` — xoshiro256++ output (u32 = high half);
//! * `Rng::gen_range` over integer and float ranges — widening-multiply
//!   rejection sampling with the same zone computation as rand 0.8.5;
//! * `Rng::gen` for the primitive types the workspace samples.
//!
//! It is wired in via `[patch.crates-io]` in `.cargo/config.toml`; builds
//! with network access resolve the real crate instead (see
//! `vendor/offline-stubs/README.md`).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes (little-endian u64 stream).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable RNG interface (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` (generator-specific expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6 default: PCG32 expansion. SmallRng overrides this
        // with SplitMix64, matching rand 0.8.5.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            let n = chunk.len().min(4);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — bit-compatible with `rand` 0.8.5's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of xoshiro256++ have weaker linear
            // complexity, and this matches rand 0.8.5 exactly.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion, as in rand 0.8.5's xoshiro256++.
        fn seed_from_u64(mut state: u64) -> Self {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            // All-zero is impossible after SplitMix64, so construct directly.
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            SmallRng { s }
        }
    }
}

/// Types samplable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait StandardSample: Sized {
    /// Draw one value with the same bit-consumption as rand 0.8.5.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_from_u32!(u8, u16, u32, i8, i16, i32);
standard_from_u64!(u64, usize, i64, isize);

impl StandardSample for u128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8.5: high word first.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}
impl StandardSample for i128 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8.5: one u32, low bit.
        (rng.next_u32() & 1) == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits, multiply-based ([0, 1)).
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> (32 - 24);
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Widening multiply: `(hi, lo)` words of the double-width product.
trait WideningMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}
impl WideningMul for u32 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let t = self as u64 * other as u64;
        ((t >> 32) as u32, t as u32)
    }
}
impl WideningMul for u64 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let t = self as u128 * other as u128;
        ((t >> 64) as u64, t as u64)
    }
}
impl WideningMul for usize {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        let (hi, lo) = (self as u64).wmul(other as u64);
        (hi as usize, lo as usize)
    }
}
impl WideningMul for u128 {
    #[inline]
    fn wmul(self, other: Self) -> (Self, Self) {
        // Schoolbook 64-bit limbs, as in rand 0.8.5.
        const LOWER_MASK: u128 = !0u64 as u128;
        let mut low = (self & LOWER_MASK).wrapping_mul(other & LOWER_MASK);
        let mut t = low >> 64;
        low &= LOWER_MASK;
        t += (self >> 64).wrapping_mul(other & LOWER_MASK);
        low += (t & LOWER_MASK) << 64;
        let mut high = t >> 64;
        t = low >> 64;
        low &= LOWER_MASK;
        t += (other >> 64).wrapping_mul(self & LOWER_MASK);
        low += (t & LOWER_MASK) << 64;
        high += t >> 64;
        high += (self >> 64).wrapping_mul(other >> 64);
        (high, low)
    }
}

/// Types supporting uniform range sampling (mirror of `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Sample uniformly from the half-open range `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample uniformly from the closed range `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let range =
                    (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1) as $u_large;
                if range == 0 {
                    // Full domain.
                    return <$ty as StandardSample>::standard_sample(rng);
                }
                let zone = if <$unsigned>::MAX as u64 <= u16::MAX as u64 {
                    // Modulus path for 8/16-bit types, as in rand 0.8.5.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large as StandardSample>::standard_sample(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(i8, u8, u32);
uniform_int_impl!(i16, u16, u32);
uniform_int_impl!(i32, u32, u32);
uniform_int_impl!(i64, u64, u64);
uniform_int_impl!(i128, u128, u128);
uniform_int_impl!(isize, usize, usize);
uniform_int_impl!(u8, u8, u32);
uniform_int_impl!(u16, u16, u32);
uniform_int_impl!(u32, u32, u32);
uniform_int_impl!(u64, u64, u64);
uniform_int_impl!(u128, u128, u128);
uniform_int_impl!(usize, usize, usize);

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bias:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                debug_assert!(low.is_finite() && high.is_finite() && low < high);
                let mut scale = high - low;
                loop {
                    // Generate a value in [1, 2): random mantissa, exponent
                    // 0 — then shift to [0, 1). This is rand 0.8.5's
                    // sample_single formula (NOT the precomputed-offset one
                    // used by `Uniform::sample`); the rounding differs.
                    let value: $uty = <$uty as StandardSample>::standard_sample(rng);
                    let value1_2 =
                        <$ty>::from_bits((value >> $bits_to_discard) | $exponent_bias);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rare rounding edge case: shrink scale by one ulp and
                    // retry, as rand 0.8.5 does.
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // The workspace only uses half-open float ranges; closed
                // ranges reuse the same sampler (the endpoint has measure
                // zero at these widths).
                if low == high {
                    return low;
                }
                Self::sample_single(low, high, rng)
            }
        }
    };
}

uniform_float_impl!(f64, u64, 64 - 52, 1023u64 << 52);
uniform_float_impl!(f32, u32, 32 - 23, 127u32 << 23);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing RNG extension trait (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value from the full domain (the `Standard` distribution).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Return `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // rand 0.8.5 uses a 64-bit scaled-integer comparison.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * 2.0f64.powi(64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Reference values computed from rand 0.8.5 + SmallRng documentation
    /// semantics: seed_from_u64(0) expands via SplitMix64 to the xoshiro
    /// state below, whose first outputs are fixed forever.
    #[test]
    fn splitmix_expansion_of_zero_seed() {
        // First four SplitMix64 outputs from state 0.
        let rng = SmallRng::seed_from_u64(0);
        let mut probe = rng.clone();
        // State words equal the SplitMix64 stream.
        let s0 = 0xe220a8397b1dcdafu64;
        let s1 = 0x6e789e6aa1b965f4u64;
        let s2 = 0x06c45d188009454fu64;
        let s3 = 0xf88bb8a8724c81ecu64;
        let expect0 = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        assert_eq!(probe.next_u64(), expect0);
        let _ = (s1, s2);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..3);
            assert!(w < 3);
            let x: u8 = rng.gen_range(0..=100);
            assert!(x <= 100);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
