use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
#[test]
fn reference_vectors() {
    // From rand 0.8.5's xoshiro256plusplus.rs test (reference C impl),
    // seed words [1, 2, 3, 4] little-endian.
    let mut seed = [0u8; 32];
    seed[0] = 1; seed[8] = 2; seed[16] = 3; seed[24] = 4;
    let mut rng = SmallRng::from_seed(seed);
    let expected: [u64; 10] = [
        41943041, 58720359, 3588806011781223, 3591011842654386,
        9228616714210784205, 9973669472204895162, 14011001112246962877,
        12406186145184390807, 15849039046786891736, 10450023813501588000,
    ];
    for &e in &expected {
        assert_eq!(rng.next_u64(), e);
    }
}
#[test]
fn seed_zero_state() {
    // SplitMix64(0) stream: e220a8397b1dcdaf 6e789e6aa1b965f4 06c45d188009454f f88bb8a8724c81ec
    let mut rng = SmallRng::seed_from_u64(0);
    let s0 = 0xe220a8397b1dcdafu64; let s3 = 0xf88bb8a8724c81ecu64;
    let expect = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
    assert_eq!(rng.next_u64(), expect);
}
