//! Offline stand-in for `crossbeam-deque`.
//!
//! Functionally equivalent (work-stealing deque + injector semantics:
//! LIFO owner end, FIFO steal end) but implemented over
//! `Mutex<VecDeque>` instead of lock-free buffers. Correctness and
//! linearizability are preserved; raw throughput is not — which is fine
//! for offline tests. Networked builds resolve the real crate.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Match crossbeam's no-poisoning behavior: a panicking worker must not
    // wedge every other worker's deque access.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Outcome of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// Lost a race; retry.
    Retry,
}

impl<T> Steal<T> {
    /// True if this is `Empty`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
    /// True if this is `Success`.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
    /// True if this is `Retry`.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
    /// Convert to `Option`, keeping only `Success`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// Owner end of a work-stealing deque.
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    lifo: bool,
}

impl<T> Worker<T> {
    /// New deque whose owner pops the most recently pushed task.
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            lifo: true,
        }
    }

    /// New deque whose owner pops the least recently pushed task.
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            lifo: false,
        }
    }

    /// Push a task onto the owner end.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Pop a task from the owner end.
    pub fn pop(&self) -> Option<T> {
        let mut q = lock(&self.inner);
        if self.lifo {
            q.pop_back()
        } else {
            q.pop_front()
        }
    }

    /// True if the deque is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of tasks in the deque.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Create a stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Thief end of a work-stealing deque (steals FIFO).
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steal the oldest task from the deque.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True if the deque is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of tasks in the deque.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Global FIFO injector queue.
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// New empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a task onto the back of the queue.
    pub fn push(&self, task: T) {
        lock(&self.inner).push_back(task);
    }

    /// Steal the task at the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.inner).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True if the queue is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }

    /// Number of tasks in the queue.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert!(inj.steal().is_empty());
    }
}
