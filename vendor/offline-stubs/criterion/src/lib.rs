//! Offline stand-in for `criterion`.
//!
//! Lets `harness = false` bench targets compile and link without the real
//! statistics engine. Running a stub bench binary is a no-op by default
//! (so `cargo test`/`cargo bench` stay fast offline); set
//! `CRITERION_STUB_RUN=1` to execute every registered benchmark closure
//! once as a smoke test. Networked builds resolve the real crate.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("standalone", id, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Set the sample count (recorded but unused offline).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare the group's throughput (recorded but unused offline).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_bench_id(), f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_bench_id(), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchId {
    /// Render to the display string.
    fn into_bench_id(self) -> String;
}
impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}
impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.rendered
    }
}

/// Declared throughput of a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Run the routine once and report its wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let dt = start.elapsed();
        std::hint::black_box(out);
        eprintln!("      1 iter in {dt:?}");
    }
}

/// True when bench bodies should actually execute.
fn smoke_enabled() -> bool {
    std::env::var_os("CRITERION_STUB_RUN").is_some_and(|v| v != "0")
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mut f: F) {
    if !smoke_enabled() {
        return;
    }
    eprintln!("criterion-stub: {group}/{id}");
    let mut b = Bencher { _private: () };
    f(&mut b);
}

/// Prevent the compiler from optimizing a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::var_os("CRITERION_STUB_RUN").is_none() {
                eprintln!(
                    "criterion-stub: skipping benchmark bodies (offline build); \
                     set CRITERION_STUB_RUN=1 to smoke-run them"
                );
                return;
            }
            $( $group(); )+
        }
    };
}
