//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`
//! returns the guard directly (no `Result`), and poisoning is swallowed —
//! parking_lot has no lock poisoning, and the hardened executor relies on
//! locks staying usable after a worker panics.

#![warn(missing_docs)]

use std::sync;
use std::time::Duration;

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Mutex with parking_lot's panic-safe, non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (no poisoning: a panicked holder does not wedge it).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable with parking_lot's API shape.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait on [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, r) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Run `f` on the guard by value, storing the returned guard back.
fn replace_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Safety-free dance: temporarily move the guard out through Option.
    // We use a raw pointer read/write pair guarded by `forget` ordering:
    // simplest correct form is ptr::read + ptr::write with no unwinding in
    // between (the closure only calls Condvar::wait variants, which do not
    // unwind under the non-poisoning wrapper).
    unsafe {
        let g = std::ptr::read(slot);
        let g = f(g);
        std::ptr::write(slot, g);
    }
}

/// RwLock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
