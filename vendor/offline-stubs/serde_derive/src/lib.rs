//! Offline no-op stand-in for `serde_derive`.
//!
//! The real derive macros generate `Serialize`/`Deserialize` impls; the
//! offline `serde` stub instead provides blanket impls, so these derives
//! only need to *accept* the syntax (including `#[serde(...)]` helper
//! attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attrs); emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attrs); emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
