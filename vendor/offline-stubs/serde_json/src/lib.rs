//! Offline stand-in for `serde_json`.
//!
//! The offline `serde` stub has no real serialization machinery, so every
//! operation here returns a descriptive [`Error`] instead of data. Callers
//! that treat JSON I/O as fallible (the entire workspace does) degrade
//! gracefully; tests that require real round-trips probe with
//! `serde_json::from_str::<i32>("1")` and skip when it fails.

#![warn(missing_docs)]

use std::fmt;

/// Error type mirroring `serde_json::Error`'s public surface.
pub struct Error {
    msg: String,
}

impl Error {
    fn stubbed(op: &str) -> Self {
        Error {
            msg: format!(
                "serde_json offline stub: {op} unavailable (built without network; \
                 see vendor/offline-stubs/README.md)"
            ),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails offline (the stub cannot produce JSON).
pub fn to_string<T>(_value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Err(Error::stubbed("to_string"))
}

/// Always fails offline (the stub cannot produce JSON).
pub fn to_string_pretty<T>(_value: &T) -> Result<String>
where
    T: ?Sized + serde::Serialize,
{
    Err(Error::stubbed("to_string_pretty"))
}

/// Always fails offline (the stub cannot parse JSON).
pub fn from_str<'a, T>(_s: &'a str) -> Result<T>
where
    T: serde::Deserialize<'a>,
{
    Err(Error::stubbed("from_str"))
}
