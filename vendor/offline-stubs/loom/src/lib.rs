//! Offline stand-in for [loom](https://crates.io/crates/loom).
//!
//! The real loom exhaustively explores thread interleavings of a model
//! under a modified memory-model simulator. This stub keeps the same API
//! surface (`loom::model`, `loom::sync::*`, `loom::thread`) but maps every
//! primitive straight onto `std`, and [`model`] simply re-runs the closure
//! many times so racy models still get randomized-stress coverage in
//! network-isolated builds. CI swaps in the real crate (the `[patch]`
//! table lives in `.cargo/config.toml`, which CI removes), so the same
//! `RUSTFLAGS="--cfg loom" cargo test --test loom_models` command is an
//! exhaustive model check there and a stress run here.
//!
//! Fidelity notes:
//!
//! * no interleaving control: preemption points come from the OS
//!   scheduler, nudged by `thread::yield_now`;
//! * no memory-model weakening: `std` atomics on x86 are stronger than
//!   the C11 model loom simulates, so ordering bugs (e.g. a `Relaxed`
//!   store that needs `Release`) may escape the stub and only fail in CI;
//! * assertion failures still fail the test, they just come with a seed's
//!   worth of schedule luck instead of a minimal trace.

#![forbid(unsafe_code)]

/// Number of stress iterations one [`model`] call performs
/// (`LOOM_STUB_ITERS` overrides; the real loom ignores that variable).
fn iters() -> usize {
    std::env::var("LOOM_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Stress-run `f` repeatedly (the real loom explores interleavings).
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..iters() {
        f();
    }
}

/// `loom::sync` → `std::sync` (same types, same API).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};

    /// `loom::sync::atomic` → `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI32, AtomicI64, AtomicIsize, AtomicU32, AtomicU64,
            AtomicU8, AtomicUsize, Ordering,
        };
    }
}

/// `loom::thread` → `std::thread`.
pub mod thread {
    pub use std::thread::{current, spawn, yield_now, JoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_closure() {
        let n = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let n2 = n.clone();
        super::model(move || {
            n2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(n.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }
}
