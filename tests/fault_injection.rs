//! End-to-end fault-injection coverage: the same `FaultPlan` vocabulary
//! drives both engines, and every fault path — injected task panics, worker
//! crashes with orphan reinjection, stalls, and watchdog aborts — is
//! exercised deterministically here.
//!
//! Simulator assertions are exact (the discrete engine is deterministic by
//! construction); runtime assertions check statuses and event kinds, never
//! wall-clock values, so they hold on loaded CI machines too.

use parflow::core::{FaultKind, FaultPlan, JobStatus, PPM};
use parflow::prelude::*;
use parflow::runtime::{
    run_workload, try_run_workload, JobSpec, RtPolicy, RuntimeConfig, NS_PER_TICK,
};
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic instance: `n` parallel-for jobs arriving every
/// `gap` ticks.
fn small_instance(n: usize, work: u64, width: usize, gap: u64) -> Instance {
    let dag = Arc::new(shapes::parallel_for(work, width));
    let jobs = (0..n)
        .map(|i| Job::new(i as u32, i as u64 * gap, dag.clone()))
        .collect();
    Instance::new(jobs)
}

// ---------------------------------------------------------------------------
// Simulator paths
// ---------------------------------------------------------------------------

#[test]
fn sim_crash_reinjects_orphans_and_completes_everything() {
    let inst = small_instance(12, 48, 8, 2);
    let cfg = SimConfig::new(4)
        .with_free_steals()
        .with_faults(FaultPlan::none().crash(0, 5).crash(1, 9));
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 4 }, 7);

    assert!(
        r.all_completed(),
        "crashes must not lose work: {:?}",
        r.unfinished()
    );
    assert_eq!(r.stats.crashed_workers, 2);
    let crash_rounds: Vec<u64> = r
        .fault_events
        .iter()
        .filter(|e| e.kind == FaultKind::Crash)
        .map(|e| e.round)
        .collect();
    assert_eq!(
        crash_rounds,
        vec![5, 9],
        "crashes fire exactly at their scheduled rounds"
    );
    // Work the dead workers held was handed back through the global queue.
    assert_eq!(
        r.stats.reinjected_tasks > 0,
        r.fault_events
            .iter()
            .any(|e| e.kind == FaultKind::OrphanReinjection)
    );
}

#[test]
fn sim_full_panic_rate_fails_every_job() {
    let inst = small_instance(8, 24, 6, 3);
    let cfg = SimConfig::new(3)
        .with_free_steals()
        .with_faults(FaultPlan::none().with_panic_ppm(PPM));
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 11);

    assert_eq!(r.unfinished().len(), 8, "ppm = 1.0 should fail every job");
    assert!(r.outcomes.iter().all(|o| o.status == JobStatus::Failed));
    assert!(r.stats.injected_panics >= 8);
    assert!(r
        .fault_events
        .iter()
        .any(|e| e.kind == FaultKind::TaskPanic));
    // Failed jobs are excluded from the robustness objective.
    assert_eq!(r.max_completed_flow(), Rational::ZERO);
}

#[test]
fn sim_stall_delays_but_never_loses_work() {
    let inst = small_instance(10, 40, 8, 2);
    let healthy_cfg = SimConfig::new(2).with_free_steals();
    let stalled_cfg = SimConfig::new(2)
        .with_free_steals()
        .with_faults(FaultPlan::none().stall(0, 0, 200));
    let policy = StealPolicy::StealKFirst { k: 2 };
    let healthy = simulate_worksteal(&inst, &healthy_cfg, policy, 3);
    let stalled = simulate_worksteal(&inst, &stalled_cfg, policy, 3);

    assert!(stalled.all_completed());
    assert!(stalled.stats.faulted_steps >= 200 - 1);
    assert!(
        stalled.max_flow() >= healthy.max_flow(),
        "losing half the machine for 200 rounds cannot improve flow: {} < {}",
        stalled.max_flow(),
        healthy.max_flow()
    );
    let begins = stalled
        .fault_events
        .iter()
        .filter(|e| e.kind == FaultKind::StallBegin)
        .count();
    let ends = stalled
        .fault_events
        .iter()
        .filter(|e| e.kind == FaultKind::StallEnd)
        .count();
    assert_eq!((begins, ends), (1, 1));
}

#[test]
fn sim_fault_runs_are_deterministic() {
    let inst = small_instance(15, 32, 4, 1);
    let plan = FaultPlan::none()
        .crash(1, 20)
        .slowdown(2, 400_000)
        .stall(3, 5, 50)
        .with_panic_ppm(30_000);
    let cfg = SimConfig::new(5).with_free_steals().with_faults(plan);
    let policy = StealPolicy::StealKFirst { k: 8 };

    let a = simulate_worksteal(&inst, &cfg, policy, 99);
    let b = simulate_worksteal(&inst, &cfg, policy, 99);
    assert_eq!(
        a.outcomes, b.outcomes,
        "same seed, same plan => identical outcomes"
    );
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.stats, b.stats);
}

// ---------------------------------------------------------------------------
// Runtime paths
// ---------------------------------------------------------------------------

#[test]
fn runtime_poisoned_job_fails_while_neighbours_complete() {
    // The acceptance scenario: a workload containing a job whose chunks all
    // panic still completes `run_workload` — no deadlock, no hung worker —
    // with exactly that job marked Failed.
    let workload = vec![
        (Duration::ZERO, JobSpec::split(40_000, 4)),
        (Duration::ZERO, JobSpec::poison(40_000, 4)),
        (Duration::from_millis(1), JobSpec::split(40_000, 4)),
    ];
    let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst);
    let r = run_workload(&cfg, &workload);

    let statuses: Vec<JobStatus> = r.jobs.iter().map(|j| j.status).collect();
    assert_eq!(
        statuses,
        vec![
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Completed
        ]
    );
    assert!(!r.aborted);
    assert!(r.stats.task_panics >= 1);
    assert!(r
        .fault_events
        .iter()
        .any(|e| e.kind == FaultKind::TaskPanic && e.job == Some(1)));
    assert!(
        r.jobs[1].flow > Duration::ZERO,
        "time-to-failure is still recorded"
    );
}

#[test]
fn runtime_crashed_worker_hands_work_to_survivor() {
    let workload: Vec<(Duration, JobSpec)> = (0..6)
        .map(|_| (Duration::ZERO, JobSpec::split(30_000, 4)))
        .collect();
    let cfg = RuntimeConfig::new(2, RtPolicy::StealKFirst { k: 4 })
        .with_faults(FaultPlan::none().crash(0, 0));
    let r = try_run_workload(&cfg, &workload).expect("valid plan");

    assert!(
        r.all_completed(),
        "survivor must finish the crashed worker's share"
    );
    assert_eq!(r.jobs.len(), 6);
    assert!(r
        .fault_events
        .iter()
        .any(|e| e.kind == FaultKind::Crash && e.worker == Some(0)));
}

#[test]
fn runtime_stalled_worker_only_slows_the_run() {
    // Worker 1 stalls for ~5 ms (50 rounds of 0.1 ms); worker 0 keeps going,
    // so everything still completes and nothing aborts.
    let workload: Vec<(Duration, JobSpec)> = (0..4)
        .map(|_| (Duration::ZERO, JobSpec::split(20_000, 2)))
        .collect();
    let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst)
        .with_faults(FaultPlan::none().stall(1, 0, 50))
        .with_deadline(Duration::from_secs(10));
    let r = try_run_workload(&cfg, &workload).expect("valid plan");

    assert!(r.all_completed());
    assert!(!r.aborted);
    assert!(r
        .fault_events
        .iter()
        .any(|e| e.kind == FaultKind::StallBegin));
}

#[test]
fn runtime_watchdog_aborts_a_wedged_machine() {
    // The only worker stalls effectively forever; with a 50 ms no-progress
    // deadline the watchdog must abort instead of hanging the test binary.
    let forever = u64::MAX / NS_PER_TICK;
    let workload = vec![(Duration::ZERO, JobSpec::split(10_000, 2))];
    let cfg = RuntimeConfig::new(1, RtPolicy::AdmitFirst)
        .with_faults(FaultPlan::none().stall(0, 0, forever))
        .with_deadline(Duration::from_millis(50));
    let r = try_run_workload(&cfg, &workload).expect("valid plan");

    assert!(r.aborted);
    assert!(r.jobs.iter().all(|j| j.status == JobStatus::Aborted));
    assert!(r.fault_events.iter().any(|e| e.kind == FaultKind::Abort));
    assert!(!r.all_completed());
}

#[test]
fn engines_share_one_fault_vocabulary() {
    // The same FaultPlan value configures both engines; a plan invalid for a
    // machine is rejected identically by both.
    let plan = FaultPlan::none().crash(3, 10);
    assert!(plan.validate(2).is_err());
    let cfg = RuntimeConfig::new(2, RtPolicy::AdmitFirst).with_faults(plan.clone());
    assert!(try_run_workload(&cfg, &[(Duration::ZERO, JobSpec::split(1_000, 1))]).is_err());
    // (The simulator rejects the same plan with a panic in run_worksteal.)
    assert!(
        plan.validate(4).is_ok(),
        "worker 3 exists on a 4-way machine"
    );
}

#[test]
#[should_panic(expected = "invalid fault plan")]
fn sim_rejects_out_of_range_plan() {
    let inst = small_instance(2, 8, 2, 1);
    let cfg = SimConfig::new(2).with_faults(FaultPlan::none().crash(3, 10));
    let _ = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1);
}
