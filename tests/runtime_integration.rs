//! Integration tests of the real crossbeam-based runtime: completion,
//! policy behaviour, and rough agreement with the simulator's qualitative
//! claims (kept loose — wall-clock results are machine-dependent).

use parflow::runtime::{run_workload, JobSpec, RtPolicy, RuntimeConfig};
use std::time::Duration;

fn burst(n: usize, chunks: usize, iters: u64) -> Vec<(Duration, JobSpec)> {
    (0..n)
        .map(|_| {
            (
                Duration::ZERO,
                JobSpec {
                    chunks,
                    iters_per_chunk: iters,
                    shape: parflow::runtime::JobShape::Flat,
                },
            )
        })
        .collect()
}

#[test]
fn both_policies_complete_identical_work() {
    let workload = burst(24, 6, 5_000);
    for policy in [RtPolicy::AdmitFirst, RtPolicy::StealKFirst { k: 16 }] {
        let cfg = RuntimeConfig::new(4, policy);
        let r = run_workload(&cfg, &workload);
        assert_eq!(r.jobs.len(), 24);
        assert_eq!(r.stats.tasks_executed, 24 * 6);
        assert_eq!(r.stats.admissions, 24);
        assert!(r.jobs.iter().all(|j| j.flow > Duration::ZERO));
    }
}

#[test]
fn staggered_arrivals_lower_flow_than_burst() {
    // Spreading arrivals out reduces queueing, so max flow should drop
    // (massively — burst flow includes waiting for ~23 earlier jobs).
    let cfg = RuntimeConfig::new(4, RtPolicy::AdmitFirst);
    let bursty = run_workload(&cfg, &burst(24, 4, 20_000));
    let spread: Vec<(Duration, JobSpec)> = (0..24)
        .map(|i| {
            (
                Duration::from_millis(2 * i as u64),
                JobSpec::split(80_000, 4),
            )
        })
        .collect();
    let relaxed = run_workload(&cfg, &spread);
    assert!(
        relaxed.max_flow() < bursty.max_flow(),
        "spread {:?} should beat burst {:?}",
        relaxed.max_flow(),
        bursty.max_flow()
    );
}

#[test]
fn parallelism_distributes_chunks_of_wide_job() {
    // One job with 8 fat chunks on 4 workers: thieves must pick up chunks.
    // The wall-clock *speedup* assertion only makes sense with real cores,
    // so it is gated on the host's available parallelism (CI containers
    // are often single-core).
    let workload = vec![(Duration::ZERO, JobSpec::split(3_200_000, 8))];
    let multi = run_workload(&RuntimeConfig::new(4, RtPolicy::AdmitFirst), &workload);
    assert!(multi.stats.successful_steals > 0, "chunks should be stolen");
    assert_eq!(multi.stats.tasks_executed, 8);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        let one = run_workload(&RuntimeConfig::new(1, RtPolicy::AdmitFirst), &workload);
        assert!(
            multi.max_flow() < one.max_flow(),
            "4 workers {:?} should beat 1 worker {:?} on a {cores}-core host",
            multi.max_flow(),
            one.max_flow()
        );
    }
}

#[test]
fn steal_counts_are_consistent() {
    let cfg = RuntimeConfig::new(4, RtPolicy::StealKFirst { k: 8 });
    let r = run_workload(&cfg, &burst(16, 8, 3_000));
    assert!(r.stats.successful_steals <= r.stats.steal_attempts);
}

#[test]
fn deterministic_task_counts_across_runs() {
    // Flow times vary run to run, but task/admission accounting must not.
    let cfg = RuntimeConfig::new(3, RtPolicy::AdmitFirst);
    let a = run_workload(&cfg, &burst(10, 5, 1_000));
    let b = run_workload(&cfg, &burst(10, 5, 1_000));
    assert_eq!(a.stats.tasks_executed, b.stats.tasks_executed);
    assert_eq!(a.stats.admissions, b.stats.admissions);
}
