//! Failure injection: corrupt real schedule traces in targeted ways and
//! assert the independent validator catches every corruption. This guards
//! the guard — a validator that silently accepts broken schedules would
//! void all the property tests built on it.
//!
//! Traces store idle stretches run-length encoded, so corruptions are
//! applied to the dense expansion and re-encoded with
//! [`ScheduleTrace::from_dense`] — which also exercises that round trip.

use parflow::core::{run_priority, run_worksteal, Action, Fifo, SimConfig, StealPolicy};
use parflow::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn traced_run(seed: u64) -> (Instance, parflow::core::ScheduleTrace) {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 2000.0, 40, seed).generate();
    let (_, trace) = run_worksteal(
        &inst,
        &SimConfig::new(3).with_trace(),
        StealPolicy::StealKFirst { k: 2 },
        seed,
    );
    (inst, trace.unwrap())
}

/// Rebuild a trace from mutated dense rows, keeping `m` and speed.
fn reencode(
    t: &parflow::core::ScheduleTrace,
    rows: Vec<Vec<Action>>,
) -> parflow::core::ScheduleTrace {
    parflow::core::ScheduleTrace::from_dense(t.m, t.speed, rows)
}

/// Indices of all Work actions in the dense rows.
fn work_positions(rows: &[Vec<Action>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (r, row) in rows.iter().enumerate() {
        for (p, a) in row.iter().enumerate() {
            if matches!(a, Action::Work { .. }) {
                out.push((r, p));
            }
        }
    }
    out
}

#[test]
fn dropping_any_work_unit_is_caught() {
    for seed in [1u64, 2, 3] {
        let (inst, trace) = traced_run(seed);
        assert_eq!(trace.validate(&inst), Ok(()));
        let dense = trace.to_dense();
        let positions = work_positions(&dense);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Drop 10 random work units; each must break work conservation.
        for _ in 0..10 {
            let (r, p) = positions[rng.gen_range(0..positions.len())];
            let mut rows = dense.clone();
            rows[r][p] = Action::Idle;
            let corrupted = reencode(&trace, rows);
            assert!(
                corrupted.validate(&inst).is_err(),
                "dropping work at round {r} proc {p} must be detected"
            );
        }
    }
}

#[test]
fn duplicating_work_after_completion_is_caught() {
    for seed in [4u64, 5] {
        let (inst, trace) = traced_run(seed);
        let mut rows = trace.to_dense();
        let positions = work_positions(&rows);
        // Re-execute the LAST work action of the trace in an appended round:
        // that node is already complete, so this must over-execute.
        let &(r, p) = positions.last().unwrap();
        let dup = rows[r][p];
        let mut row = vec![Action::Idle; trace.m];
        row[0] = dup;
        rows.push(row);
        assert!(
            reencode(&trace, rows).validate(&inst).is_err(),
            "duplicated terminal work unit must be detected"
        );
    }
}

#[test]
fn retargeting_to_unknown_job_is_caught() {
    let (inst, trace) = traced_run(7);
    let mut rows = trace.to_dense();
    let positions = work_positions(&rows);
    let (r, p) = positions[positions.len() / 2];
    rows[r][p] = Action::Work {
        job: inst.len() as u32 + 5,
        node: 0,
    };
    assert!(reencode(&trace, rows).validate(&inst).is_err());
}

#[test]
fn moving_work_before_arrival_is_caught() {
    // Find a job that arrives late, then prepend a round executing it at
    // time zero.
    let (inst, trace) = traced_run(11);
    let late_job = inst
        .jobs()
        .iter()
        .find(|j| j.arrival > 2)
        .expect("some job arrives after tick 2");
    let mut rows = trace.to_dense();
    let mut row = vec![Action::Idle; trace.m];
    row[0] = Action::Work {
        job: late_job.id,
        node: late_job.dag.sources()[0],
    };
    rows.insert(0, row);
    // The prepended unit runs before the job arrived (and the trace now
    // also over-executes that node) — either way, validation must fail.
    assert!(reencode(&trace, rows).validate(&inst).is_err());
}

#[test]
fn reordering_chain_execution_is_caught() {
    // Deterministic construction: a 2-node chain executed in the wrong
    // order on one processor.
    use std::sync::Arc;
    let dag = Arc::new(shapes::chain(2, 1));
    let inst = Instance::new(vec![Job::new(0, 0, dag)]);
    let (_, trace) = run_priority(&inst, &SimConfig::new(1).with_trace(), &Fifo);
    let trace = trace.unwrap();
    assert_eq!(trace.validate(&inst), Ok(()));
    let mut rows = trace.to_dense();
    // Swap the two work rounds.
    rows.swap(0, 1);
    assert!(reencode(&trace, rows).validate(&inst).is_err());
}

#[test]
fn truncating_the_tail_is_caught() {
    let (inst, trace) = traced_run(13);
    let mut rows = trace.to_dense();
    // Remove trailing rounds until we have removed at least one Work action.
    let mut removed_work = false;
    while !removed_work {
        let row = rows.pop().expect("trace non-empty");
        removed_work = row.iter().any(|a| matches!(a, Action::Work { .. }));
    }
    assert!(reencode(&trace, rows).validate(&inst).is_err());
}
