//! Workload persistence round-trips and simulation reproducibility from
//! saved instances.

use parflow::prelude::*;
use parflow::workloads::trace_io::{load_instance, save_instance};

/// True when a real `serde_json` is linked (the offline build stubs it out;
/// see vendor/offline-stubs/README.md). Persistence tests need real JSON.
fn serde_available() -> bool {
    serde_json::from_str::<i32>("1").is_ok()
}

#[test]
fn saved_instance_reproduces_simulation() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 1200.0, 300, 8).generate();
    let dir = std::env::temp_dir().join("parflow_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fin.json");
    save_instance(&inst, &path).unwrap();
    let loaded = load_instance(&path).unwrap();

    let cfg = SimConfig::new(8).with_free_steals();
    let policy = StealPolicy::StealKFirst { k: 16 };
    let a = simulate_worksteal(&inst, &cfg, policy, 5);
    let b = simulate_worksteal(&loaded, &cfg, policy, 5);
    assert_eq!(a.max_flow(), b.max_flow());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.flow, y.flow);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn opt_is_stable_across_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 900.0, 200, 12).generate();
    let dir = std::env::temp_dir().join("parflow_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bing.json");
    save_instance(&inst, &path).unwrap();
    let loaded = load_instance(&path).unwrap();
    assert_eq!(opt_max_flow(&inst, 16), opt_max_flow(&loaded, 16));
    std::fs::remove_file(&path).unwrap();
}
