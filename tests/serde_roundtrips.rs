//! Serde round-trips of every serializable artifact: results, traces,
//! interval analyses and configs survive JSON encoding bit-exactly,
//! so experiment outputs can be archived and re-analyzed.

use parflow::core::{
    analyze_intervals, run_worksteal, Action, ScheduleTrace, SimConfig, SimResult, StealPolicy,
};
use parflow::prelude::*;

/// True when a real `serde_json` is linked. The offline build patches in
/// a stub whose functions return errors (see vendor/offline-stubs/README.md);
/// JSON round-trip tests are skipped in that configuration.
fn serde_available() -> bool {
    serde_json::from_str::<i32>("1").is_ok()
}

fn sample_run() -> (Instance, SimResult, ScheduleTrace) {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 2000.0, 60, 5).generate();
    let (r, t) = run_worksteal(
        &inst,
        &SimConfig::new(3).with_trace().with_sampling(8),
        StealPolicy::StealKFirst { k: 3 },
        9,
    );
    (inst, r, t.unwrap())
}

#[test]
fn sim_result_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let (_, r, _) = sample_run();
    let json = serde_json::to_string(&r).unwrap();
    let back: SimResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.m, r.m);
    assert_eq!(back.speed, r.speed);
    assert_eq!(back.total_rounds, r.total_rounds);
    assert_eq!(back.outcomes, r.outcomes);
    assert_eq!(back.stats, r.stats);
    assert_eq!(back.samples, r.samples);
    assert_eq!(back.max_flow(), r.max_flow());
}

#[test]
fn trace_roundtrip_and_revalidates() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let (inst, _, t) = sample_run();
    let json = serde_json::to_string(&t).unwrap();
    let back: ScheduleTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back.m, t.m);
    assert_eq!(back.num_rounds(), t.num_rounds());
    assert_eq!(back.spans, t.spans);
    assert_eq!(back.validate(&inst), Ok(()));
    // Spot-check an action encodes/decodes structurally.
    let dense = t.to_dense();
    let any_work = dense
        .iter()
        .flatten()
        .find(|a| matches!(a, Action::Work { .. }))
        .unwrap();
    let a_json = serde_json::to_string(any_work).unwrap();
    let a_back: Action = serde_json::from_str(&a_json).unwrap();
    assert_eq!(&a_back, any_work);
}

#[test]
fn interval_analysis_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let (_, r, _) = sample_run();
    let a = analyze_intervals(&r, Rational::new(1, 10)).unwrap();
    let json = serde_json::to_string(&a).unwrap();
    let back: parflow::core::IntervalAnalysis = serde_json::from_str(&json).unwrap();
    assert_eq!(back.job, a.job);
    assert_eq!(back.flow, a.flow);
    assert_eq!(back.intervals, a.intervals);
    assert_eq!(back.t_prime, a.t_prime);
}

#[test]
fn config_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let cfg = SimConfig::new(8)
        .with_speed(Speed::new(11, 10))
        .with_free_steals()
        .with_victim_scan()
        .with_half_steals()
        .with_sampling(32);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}

#[test]
fn rational_and_speed_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    for r in [
        Rational::new(22, 7),
        Rational::ZERO,
        Rational::new(-5, 3),
        Rational::from_int(1_000_000),
    ] {
        let json = serde_json::to_string(&r).unwrap();
        let back: Rational = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
    for s in [Speed::ONE, Speed::new(21, 20), Speed::integer(17)] {
        let json = serde_json::to_string(&s).unwrap();
        let back: Speed = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

#[test]
fn scheduler_kind_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    use parflow::core::SchedulerKind;
    for kind in SchedulerKind::all() {
        let json = serde_json::to_string(&kind).unwrap();
        let back: SchedulerKind = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kind);
    }
}
