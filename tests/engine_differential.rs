//! Differential proof of the event-horizon centralized engine.
//!
//! `run_priority` advances in bulk between scheduling events (arrivals and
//! node completions of claimed work); `run_priority_reference` — compiled in
//! via the `reference-engine` feature — is the original round-by-round loop,
//! kept verbatim as the behavioural spec. Across random instances, processor
//! counts, speeds (including fractional augmentation) and priority policies,
//! the two must be **bit-identical**: same outcomes, same stats, same round
//! counts, and the same trace round-for-round.

use parflow::core::{
    run_priority, run_priority_reference, BiggestWeightFirst, Fifo, JobPriority, Lifo,
    ShortestJobFirst, SimConfig,
};
use parflow::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random small instance of mixed DAG shapes and arrival patterns,
/// including bursts (equal arrivals) and sparse gaps that exercise the
/// quiescent fast-forward path.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (any::<u64>(), 1usize..14, 0u64..60).prop_map(|(seed, njobs, spread)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let jobs = (0..njobs)
            .map(|i| {
                let arrival = if spread == 0 {
                    0
                } else {
                    rng.gen_range(0..=spread)
                };
                let dag = match rng.gen_range(0..5u8) {
                    0 => shapes::single_node(rng.gen_range(1..25)),
                    1 => shapes::chain(rng.gen_range(1..6), rng.gen_range(1..5)),
                    2 => shapes::parallel_for(rng.gen_range(1..40), rng.gen_range(1..8)),
                    3 => shapes::fork_join(rng.gen_range(0..4), rng.gen_range(1..5)),
                    _ => shapes::layered_random(&mut rng, shapes::LayeredParams::default()),
                };
                let weight = rng.gen_range(1..10u64);
                Job::weighted(i as u32, arrival, weight, Arc::new(dag))
            })
            .collect();
        Instance::new(jobs)
    })
}

fn arb_speed() -> impl Strategy<Value = Speed> {
    prop_oneof![
        Just(Speed::ONE),
        Just(Speed::new(11, 10)),
        Just(Speed::new(3, 2)),
        Just(Speed::new(21, 20)),
        Just(Speed::integer(2)),
        Just(Speed::integer(3)),
    ]
}

/// Assert the fast and reference engines agree bit-for-bit on `inst`.
fn assert_identical<P: JobPriority>(inst: &Instance, cfg: &SimConfig, policy: &P, name: &str) {
    let (fast, fast_trace) = run_priority(inst, cfg, policy);
    let (slow, slow_trace) = run_priority_reference(inst, cfg, policy);
    assert_eq!(fast.m, slow.m, "{name}: m");
    assert_eq!(fast.speed, slow.speed, "{name}: speed");
    assert_eq!(fast.total_rounds, slow.total_rounds, "{name}: total_rounds");
    assert_eq!(fast.outcomes, slow.outcomes, "{name}: outcomes");
    assert_eq!(fast.stats, slow.stats, "{name}: stats");
    assert_eq!(fast.samples, slow.samples, "{name}: samples");
    match (fast_trace, slow_trace) {
        (None, None) => {}
        (Some(f), Some(s)) => {
            assert_eq!(f.spans, s.spans, "{name}: trace spans");
            assert_eq!(f.validate(inst), Ok(()), "{name}: trace validity");
            // Independent machine-check of the paper invariants (P1–P5)
            // on the agreed-upon schedule.
            let report = parflow_certify::certify_run(inst, cfg, None, &fast, &f);
            assert!(report.is_clean(), "{name}: {}", report.render());
        }
        _ => panic!("{name}: trace presence mismatch"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fifo_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed(), traced in any::<bool>()
    ) {
        let mut cfg = SimConfig::new(m).with_speed(speed);
        if traced {
            cfg = cfg.with_trace();
        }
        assert_identical(&inst, &cfg, &Fifo, "fifo");
    }

    #[test]
    fn bwf_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed()
    ) {
        let cfg = SimConfig::new(m).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &BiggestWeightFirst, "bwf");
    }

    #[test]
    fn lifo_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed()
    ) {
        let cfg = SimConfig::new(m).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &Lifo, "lifo");
    }

    #[test]
    fn sjf_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed()
    ) {
        let cfg = SimConfig::new(m).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &ShortestJobFirst, "sjf");
    }
}

#[test]
fn single_processor_long_chain_is_bit_identical() {
    // Degenerate shapes the proptest generator rarely hits: m=1 with a
    // long sequential chain (maximal event-horizon spans) and a huge gap.
    let jobs = vec![
        Job::new(0, 0, Arc::new(shapes::chain(4, 50))),
        Job::new(1, 100_000, Arc::new(shapes::single_node(3))),
    ];
    let inst = Instance::new(jobs);
    for speed in [Speed::ONE, Speed::new(11, 10)] {
        let cfg = SimConfig::new(1).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &Fifo, "chain-gap");
    }
}

// ---------------------------------------------------------------------------
// Batched-replica engine differentials: `run_batched` steps B independent
// replicas over shared SoA lanes (calendar queue, bitsets, k-burn windows)
// and must be bit-identical, replica by replica, to `run_worksteal` — the
// sequential engine is its behavioural reference, exactly as
// `run_priority_reference` anchors the centralized fast path.
// ---------------------------------------------------------------------------

use parflow::core::{run_batched, run_worksteal, ReplicaSpec};

/// A random work-stealing replica spec: config knobs that all interact
/// with the batched fast paths (steal cost, victim strategy, steal amount,
/// admission order, sampling cadence, trace recording) plus policy + seed.
fn arb_replica_spec() -> impl Strategy<Value = ReplicaSpec> {
    (
        1usize..6, // m
        arb_speed(),
        0u32..5,       // k (0 = admit-first)
        any::<bool>(), // free steals
        any::<bool>(), // round-robin scan victims
        any::<bool>(), // half steals
        any::<bool>(), // weighted admission
        0u64..4,       // sample_every (0 = off)
        any::<bool>(), // record trace
        any::<u64>(),  // rng seed
    )
        .prop_map(
            |(m, speed, k, free, scan, half, weighted, sample, traced, seed)| {
                let mut cfg = SimConfig::new(m).with_speed(speed);
                if free {
                    cfg = cfg.with_free_steals();
                }
                if scan {
                    cfg = cfg.with_victim_scan();
                }
                if half {
                    cfg = cfg.with_half_steals();
                }
                if weighted {
                    cfg = cfg.with_weighted_admission();
                }
                if sample > 0 {
                    cfg = cfg.with_sampling(sample);
                }
                if traced {
                    cfg = cfg.with_trace();
                }
                let policy = if k == 0 {
                    StealPolicy::AdmitFirst
                } else {
                    StealPolicy::StealKFirst { k }
                };
                ReplicaSpec::new(cfg, policy, seed)
            },
        )
}

/// Assert every batched replica matches its sequential run bit-for-bit,
/// including the trace.
fn assert_batch_identical(inst: &Instance, specs: &[ReplicaSpec], lanes: usize) {
    let batched = run_batched(inst, specs, lanes);
    assert_eq!(batched.len(), specs.len());
    for (i, (spec, (result, trace))) in specs.iter().zip(&batched).enumerate() {
        let (want_result, want_trace) = run_worksteal(inst, &spec.config, spec.policy, spec.seed);
        assert_eq!(*result, want_result, "replica {i} (lanes={lanes}): result");
        assert_eq!(*trace, want_trace, "replica {i} (lanes={lanes}): trace");
        if let Some(t) = trace {
            assert_eq!(t.validate(inst), Ok(()), "replica {i}: trace validity");
            let report =
                parflow_certify::certify_run(inst, &spec.config, Some(spec.policy), result, t);
            assert!(report.is_clean(), "replica {i}: {}", report.render());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_replicas_are_bit_identical_across_lane_counts(
        inst in arb_instance(),
        specs in proptest::collection::vec(arb_replica_spec(), 1..8),
        lanes in prop_oneof![Just(1usize), Just(2usize), Just(7usize)]
    ) {
        assert_batch_identical(&inst, &specs, lanes);
    }

    #[test]
    fn batched_same_config_seed_sweep_is_bit_identical(
        inst in arb_instance(), spec in arb_replica_spec(), seed0 in any::<u64>()
    ) {
        // The bench drivers' shape: one config, many seeds.
        let specs: Vec<ReplicaSpec> = (0..7)
            .map(|i| ReplicaSpec::new(spec.config.clone(), spec.policy, seed0 ^ (i + 1)))
            .collect();
        assert_batch_identical(&inst, &specs, 2);
    }
}

proptest! {
    // Giant-m runs are slower per case; fewer cases keep the suite quick.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_giant_m_256_is_bit_identical(
        inst in arb_instance(), seed in any::<u64>(), k in 0u32..20, traced in any::<bool>()
    ) {
        let mut cfg = SimConfig::new(256);
        if traced {
            cfg = cfg.with_trace();
        }
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        assert_batch_identical(&inst, &[ReplicaSpec::new(cfg, policy, seed)], 1);
    }
}

/// Satellite regression: the admit-first (`ws_admit`) free-steal
/// configuration counts `2m` bounded steal attempts per idle worker per
/// round; the batched path must report per-replica `steal_attempts`
/// (and every other counter) identical to the sequential engine.
#[test]
fn ws_admit_steal_attempts_match_sequential_exactly() {
    let jobs = vec![
        Job::new(0, 0, Arc::new(shapes::parallel_for(24, 6))),
        Job::new(1, 4, Arc::new(shapes::chain(3, 5))),
        Job::new(2, 4, Arc::new(shapes::single_node(9))),
        Job::new(3, 90, Arc::new(shapes::fork_join(3, 2))),
    ];
    let inst = Instance::new(jobs);
    let cfg = SimConfig::new(4).with_free_steals();
    let specs: Vec<ReplicaSpec> = (0..3)
        .map(|i| ReplicaSpec::new(cfg.clone(), StealPolicy::AdmitFirst, 0x5eed ^ i))
        .collect();
    let batched = run_batched(&inst, &specs, 3);
    for (spec, (result, _)) in specs.iter().zip(&batched) {
        let (want, _) = run_worksteal(&inst, &spec.config, spec.policy, spec.seed);
        assert_eq!(
            result.stats.steal_attempts, want.stats.steal_attempts,
            "seed {}: steal_attempts",
            spec.seed
        );
        assert_eq!(result.stats, want.stats, "seed {}: stats", spec.seed);
        assert_eq!(*result, want, "seed {}: full result", spec.seed);
    }
    // Pin the absolute value so both engines regressing together still
    // trips the test (seed 0x5eed, the exact stream the goldens freeze).
    assert_eq!(batched[0].0.stats.steal_attempts, 354);
}
