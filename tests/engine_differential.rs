//! Differential proof of the event-horizon centralized engine.
//!
//! `run_priority` advances in bulk between scheduling events (arrivals and
//! node completions of claimed work); `run_priority_reference` — compiled in
//! via the `reference-engine` feature — is the original round-by-round loop,
//! kept verbatim as the behavioural spec. Across random instances, processor
//! counts, speeds (including fractional augmentation) and priority policies,
//! the two must be **bit-identical**: same outcomes, same stats, same round
//! counts, and the same trace round-for-round.

use parflow::core::{
    run_priority, run_priority_reference, BiggestWeightFirst, Fifo, JobPriority, Lifo,
    ShortestJobFirst, SimConfig,
};
use parflow::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random small instance of mixed DAG shapes and arrival patterns,
/// including bursts (equal arrivals) and sparse gaps that exercise the
/// quiescent fast-forward path.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (any::<u64>(), 1usize..14, 0u64..60).prop_map(|(seed, njobs, spread)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let jobs = (0..njobs)
            .map(|i| {
                let arrival = if spread == 0 {
                    0
                } else {
                    rng.gen_range(0..=spread)
                };
                let dag = match rng.gen_range(0..5u8) {
                    0 => shapes::single_node(rng.gen_range(1..25)),
                    1 => shapes::chain(rng.gen_range(1..6), rng.gen_range(1..5)),
                    2 => shapes::parallel_for(rng.gen_range(1..40), rng.gen_range(1..8)),
                    3 => shapes::fork_join(rng.gen_range(0..4), rng.gen_range(1..5)),
                    _ => shapes::layered_random(&mut rng, shapes::LayeredParams::default()),
                };
                let weight = rng.gen_range(1..10u64);
                Job::weighted(i as u32, arrival, weight, Arc::new(dag))
            })
            .collect();
        Instance::new(jobs)
    })
}

fn arb_speed() -> impl Strategy<Value = Speed> {
    prop_oneof![
        Just(Speed::ONE),
        Just(Speed::new(11, 10)),
        Just(Speed::new(3, 2)),
        Just(Speed::new(21, 20)),
        Just(Speed::integer(2)),
        Just(Speed::integer(3)),
    ]
}

/// Assert the fast and reference engines agree bit-for-bit on `inst`.
fn assert_identical<P: JobPriority>(inst: &Instance, cfg: &SimConfig, policy: &P, name: &str) {
    let (fast, fast_trace) = run_priority(inst, cfg, policy);
    let (slow, slow_trace) = run_priority_reference(inst, cfg, policy);
    assert_eq!(fast.m, slow.m, "{name}: m");
    assert_eq!(fast.speed, slow.speed, "{name}: speed");
    assert_eq!(fast.total_rounds, slow.total_rounds, "{name}: total_rounds");
    assert_eq!(fast.outcomes, slow.outcomes, "{name}: outcomes");
    assert_eq!(fast.stats, slow.stats, "{name}: stats");
    assert_eq!(fast.samples, slow.samples, "{name}: samples");
    match (fast_trace, slow_trace) {
        (None, None) => {}
        (Some(f), Some(s)) => {
            assert_eq!(f.spans, s.spans, "{name}: trace spans");
            assert_eq!(f.validate(inst), Ok(()), "{name}: trace validity");
        }
        _ => panic!("{name}: trace presence mismatch"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fifo_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed(), traced in any::<bool>()
    ) {
        let mut cfg = SimConfig::new(m).with_speed(speed);
        if traced {
            cfg = cfg.with_trace();
        }
        assert_identical(&inst, &cfg, &Fifo, "fifo");
    }

    #[test]
    fn bwf_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed()
    ) {
        let cfg = SimConfig::new(m).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &BiggestWeightFirst, "bwf");
    }

    #[test]
    fn lifo_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed()
    ) {
        let cfg = SimConfig::new(m).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &Lifo, "lifo");
    }

    #[test]
    fn sjf_event_horizon_is_bit_identical(
        inst in arb_instance(), m in 1usize..6, speed in arb_speed()
    ) {
        let cfg = SimConfig::new(m).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &ShortestJobFirst, "sjf");
    }
}

#[test]
fn single_processor_long_chain_is_bit_identical() {
    // Degenerate shapes the proptest generator rarely hits: m=1 with a
    // long sequential chain (maximal event-horizon spans) and a huge gap.
    let jobs = vec![
        Job::new(0, 0, Arc::new(shapes::chain(4, 50))),
        Job::new(1, 100_000, Arc::new(shapes::single_node(3))),
    ];
    let inst = Instance::new(jobs);
    for speed in [Speed::ONE, Speed::new(11, 10)] {
        let cfg = SimConfig::new(1).with_speed(speed).with_trace();
        assert_identical(&inst, &cfg, &Fifo, "chain-gap");
    }
}
