//! Differential proof of the arena-backed cursor storage.
//!
//! PR 4 moved both engines' per-job `DagCursor` state into a recycled
//! [`CursorArena`]: slots are allocated at arrival/admission and released
//! at completion, so a slot that served one job is handed — buffers and
//! all — to a later arrival. These tests pin that the recycling is
//! observationally invisible:
//!
//! * the arena-backed `run_priority` stays bit-identical (outcomes, stats,
//!   rounds, full `ScheduleTrace`) to `run_priority_reference`, which still
//!   constructs a fresh non-arena `DagCursor` per job;
//! * arbitrary interleavings of arena alloc/release against live cursor
//!   stepping behave exactly like fresh `DagCursor`s driven in lockstep;
//! * the work-stealing engine (same arena plumbing) stays deterministic
//!   with recycling in the loop — its absolute values are pinned
//!   separately by `tests/golden.rs`.

use parflow::core::{
    run_priority, run_priority_reference, run_worksteal, BiggestWeightFirst, Fifo, JobPriority,
    SimConfig, StealPolicy,
};
use parflow::prelude::*;
use parflow_dag::{CursorArena, DagCursor, JobDag, UnitOutcome};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Instances biased toward heavy slot recycling: few processors relative
/// to job count and spread-out arrivals, so jobs continually complete
/// (releasing their arena slot) while later jobs arrive into the freed
/// slots — the interleaved arrival/completion pattern the arena must
/// survive.
fn arb_recycling_instance() -> impl Strategy<Value = Instance> {
    (any::<u64>(), 4usize..20, 0u64..120).prop_map(|(seed, njobs, spread)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let jobs = (0..njobs)
            .map(|i| {
                let arrival = if spread == 0 {
                    0
                } else {
                    rng.gen_range(0..=spread)
                };
                let dag = match rng.gen_range(0..5u8) {
                    0 => shapes::single_node(rng.gen_range(1..20)),
                    1 => shapes::chain(rng.gen_range(1..6), rng.gen_range(1..5)),
                    2 => shapes::parallel_for(rng.gen_range(1..30), rng.gen_range(1..8)),
                    3 => shapes::fork_join(rng.gen_range(0..4), rng.gen_range(1..4)),
                    _ => shapes::layered_random(&mut rng, shapes::LayeredParams::default()),
                };
                let weight = rng.gen_range(1..10u64);
                Job::weighted(i as u32, arrival, weight, Arc::new(dag))
            })
            .collect();
        Instance::new(jobs)
    })
}

fn assert_identical<P: JobPriority>(inst: &Instance, cfg: &SimConfig, policy: &P, name: &str) {
    let (fast, fast_trace) = run_priority(inst, cfg, policy);
    let (slow, slow_trace) = run_priority_reference(inst, cfg, policy);
    assert_eq!(fast.total_rounds, slow.total_rounds, "{name}: total_rounds");
    assert_eq!(fast.outcomes, slow.outcomes, "{name}: outcomes");
    assert_eq!(fast.stats, slow.stats, "{name}: stats");
    match (fast_trace, slow_trace) {
        (None, None) => {}
        (Some(f), Some(s)) => {
            assert_eq!(f.spans, s.spans, "{name}: trace spans");
            assert_eq!(f.validate(inst), Ok(()), "{name}: trace validity");
        }
        _ => panic!("{name}: trace presence mismatch"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arena-backed centralized engine vs the per-job-cursor reference,
    /// with the trace recorded: recycling must not shift a single action.
    #[test]
    fn arena_engine_matches_reference_with_trace(
        inst in arb_recycling_instance(),
        m in 1usize..5
    ) {
        let cfg = SimConfig::new(m).with_trace();
        assert_identical(&inst, &cfg, &Fifo, "fifo");
        assert_identical(&inst, &cfg, &BiggestWeightFirst, "bwf");
    }

    /// Same, at augmented speeds (bulk windows shrink and grow) without
    /// the trace, which exercises the non-traced release path.
    #[test]
    fn arena_engine_matches_reference_across_speeds(
        inst in arb_recycling_instance(),
        m in 1usize..5,
        num in 1u64..4
    ) {
        let cfg = SimConfig::new(m).with_speed(Speed::new(num + 1, num.min(2)));
        assert_identical(&inst, &cfg, &Fifo, "fifo-speed");
    }

    /// The work-stealing engine with arena recycling in the loop is still
    /// a pure function of (instance, config, policy, seed): two runs agree
    /// on everything including the trace. Absolute output values are
    /// pinned against the pre-arena engine by tests/golden.rs.
    #[test]
    fn worksteal_arena_runs_are_reproducible(
        inst in arb_recycling_instance(),
        m in 1usize..4,
        seed in any::<u64>()
    ) {
        let cfg = SimConfig::new(m).with_free_steals().with_trace();
        let policy = StealPolicy::StealKFirst { k: 4 };
        let (a, ta) = run_worksteal(&inst, &cfg, policy, seed);
        let (b, tb) = run_worksteal(&inst, &cfg, policy, seed);
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.total_rounds, b.total_rounds);
        prop_assert_eq!(ta.unwrap().spans, tb.unwrap().spans);
    }

    /// Drive an arena slot and a fresh cursor in lockstep through random
    /// greedy executions with arbitrary alloc/release interleavings in
    /// between: a recycled slot must be indistinguishable from a fresh
    /// `DagCursor` at every step.
    #[test]
    fn recycled_slots_track_fresh_cursors(seed in any::<u64>(), rounds in 1usize..12) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut arena = CursorArena::new();
        for _ in 0..rounds {
            let dag: JobDag = match rng.gen_range(0..4u8) {
                0 => shapes::single_node(rng.gen_range(1..10)),
                1 => shapes::chain(rng.gen_range(1..5), rng.gen_range(1..4)),
                2 => shapes::parallel_for(rng.gen_range(1..25), rng.gen_range(1..7)),
                _ => shapes::fork_join(rng.gen_range(0..3), rng.gen_range(1..4)),
            };
            let id = arena.alloc(&dag);
            let mut fresh = DagCursor::new(&dag);
            // Greedy random execution, possibly abandoned partway (the
            // slot is released mid-flight, like a failed job).
            let abandon = rng.gen_bool(0.3);
            let stop_after = rng.gen_range(0..=dag.total_work());
            let mut units = 0u64;
            while !fresh.is_complete() {
                if abandon && units >= stop_after {
                    break;
                }
                let pick = rng.gen_range(0..fresh.ready_count());
                let v = fresh.ready_nodes()[pick];
                prop_assert_eq!(arena.get(id).ready_nodes(), fresh.ready_nodes());
                fresh.claim(v).unwrap();
                arena.get_mut(id).claim(v).unwrap();
                loop {
                    units += 1;
                    let a = arena.get_mut(id).execute_unit(&dag, v).unwrap();
                    let f = fresh.execute_unit(&dag, v).unwrap();
                    prop_assert_eq!(&a, &f);
                    if matches!(f, UnitOutcome::NodeCompleted { .. }) {
                        break;
                    }
                }
                prop_assert_eq!(arena.get(id).executed_units(), fresh.executed_units());
            }
            prop_assert_eq!(arena.get(id).is_complete(), fresh.is_complete());
            prop_assert_eq!(arena.get(id).completed_nodes(), fresh.completed_nodes());
            arena.release(id);
        }
        // The pool never grew past one slot: every iteration recycled.
        prop_assert_eq!(arena.capacity(), 1);
    }
}
