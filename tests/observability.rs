//! Observability-layer guarantees, pinned as integration tests:
//!
//! 1. **Null is free.** Running an engine through its `*_observed` entry
//!    point with a [`NullRecorder`] must be *byte-identical* to the plain
//!    entry point — same outcomes, same `EngineStats`, same RNG stream,
//!    same `ScheduleTrace`. The goldens in `tests/golden.rs` therefore
//!    keep protecting the observed code path too.
//! 2. **Reports are deterministic.** Two observed runs of the same
//!    deterministic engine produce byte-identical counter / gauge /
//!    histogram sections in the `--obs-json` report; only the `phases`
//!    (wall-clock) section may differ.
//! 3. **Counters are u64-exact.** The per-worker steal telemetry must sum
//!    to the engine's aggregate counters with no saturation.

use parflow::core::{
    run_priority, run_priority_observed, run_worksteal, run_worksteal_observed, Fifo, SimConfig,
    StealPolicy,
};
use parflow::obs::{AggregatingRecorder, NullRecorder, Recorder};
use parflow::prelude::*;

fn probe_instance() -> Instance {
    WorkloadSpec::paper_fig2(DistKind::Bing, 600.0, 500, 0xC0FFEE).generate()
}

/// Field-by-field equality for `SimResult` (it carries no `PartialEq`).
fn assert_results_identical(a: &parflow::core::SimResult, b: &parflow::core::SimResult) {
    assert_eq!(a.m, b.m);
    assert_eq!(a.speed, b.speed);
    assert_eq!(a.total_rounds, b.total_rounds);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.fault_events, b.fault_events);
}

#[test]
fn null_recorder_keeps_worksteal_byte_identical() {
    let inst = probe_instance();
    // Trace recording exercises the slow path; free steals the fast path.
    for cfg in [
        SimConfig::new(8).with_free_steals(),
        SimConfig::new(8).with_free_steals().with_trace(),
        SimConfig::new(8).with_trace(),
    ] {
        for policy in [StealPolicy::AdmitFirst, StealPolicy::StealKFirst { k: 16 }] {
            let (plain, plain_trace) = run_worksteal(&inst, &cfg, policy, 12345);
            let (observed, observed_trace) =
                run_worksteal_observed(&inst, &cfg, policy, 12345, &mut NullRecorder);
            assert_results_identical(&plain, &observed);
            assert_eq!(plain_trace, observed_trace, "trace must be byte-identical");
        }
    }
}

#[test]
fn null_recorder_keeps_centralized_byte_identical() {
    let inst = probe_instance();
    for cfg in [SimConfig::new(8), SimConfig::new(8).with_trace()] {
        let (plain, plain_trace) = run_priority(&inst, &cfg, &Fifo);
        let (observed, observed_trace) =
            run_priority_observed(&inst, &cfg, &Fifo, &mut NullRecorder);
        assert_results_identical(&plain, &observed);
        assert_eq!(plain_trace, observed_trace);
    }
}

#[test]
fn golden_max_flows_hold_through_observed_path() {
    // The same frozen values as tests/golden.rs, via the observed entry
    // points with an *enabled* recorder: instrumentation must not perturb
    // scheduling decisions either.
    let inst = probe_instance();
    let cfg = SimConfig::new(8).with_free_steals();
    let mut rec = AggregatingRecorder::new();
    let (ws, _) = run_worksteal_observed(
        &inst,
        &cfg,
        StealPolicy::StealKFirst { k: 16 },
        12345,
        &mut rec,
    );
    assert_eq!(ws.max_flow(), Rational::from_int(467));
    let (fifo, _) = run_priority_observed(&inst, &SimConfig::new(8), &Fifo, &mut rec);
    assert_eq!(fifo.max_flow(), Rational::from_int(345));
}

#[test]
fn obs_report_counters_are_deterministic() {
    let inst = probe_instance();
    let cfg = SimConfig::new(8).with_free_steals();
    let build = || {
        let mut rec = AggregatingRecorder::new();
        rec.span_begin("probe");
        let _ = run_worksteal_observed(
            &inst,
            &cfg,
            StealPolicy::StealKFirst { k: 16 },
            12345,
            &mut rec,
        );
        let _ = run_priority_observed(&inst, &SimConfig::new(8), &Fifo, &mut rec);
        rec.span_end("probe");
        rec.report()
    };
    let (a, b) = (build(), build());
    assert_eq!(a.counters, b.counters, "counter section must be stable");
    assert_eq!(a.gauges, b.gauges, "gauge section must be stable");
    // Histogram summaries are pure functions of the deterministic samples.
    let ha = a.to_json();
    let hb = b.to_json();
    let strip_phases = |s: &str| s.split("\"phases\"").next().unwrap().to_string();
    assert_eq!(
        strip_phases(&ha),
        strip_phases(&hb),
        "everything before the phases section must serialize identically"
    );
    // Phases exist (wall-clock values may of course differ across runs).
    assert_eq!(a.phases.len(), 1);
    assert_eq!(a.phases[0].0, "probe");
}

#[test]
fn per_worker_counters_sum_to_engine_aggregates() {
    let inst = probe_instance();
    let cfg = SimConfig::new(8).with_free_steals();
    let mut rec = AggregatingRecorder::new();
    let (r, _) = run_worksteal_observed(
        &inst,
        &cfg,
        StealPolicy::StealKFirst { k: 16 },
        12345,
        &mut rec,
    );
    let sum = |name: &str| {
        (0..8)
            .map(|p| rec.counter_value(name, Some(p)))
            .sum::<u64>()
    };
    assert_eq!(sum("ws.worker.steal_attempts"), r.stats.steal_attempts);
    assert_eq!(sum("ws.worker.work_steps"), r.stats.work_steps);
    assert_eq!(sum("ws.worker.admissions"), r.stats.admissions);
    assert_eq!(
        rec.counter_value("ws.steal_attempts", None),
        r.stats.steal_attempts
    );
    assert_eq!(rec.samples("ws.flow_ticks").len(), inst.len());
}
