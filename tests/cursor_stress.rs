//! Adversarial stress of `DagCursor`: random interleavings of claim /
//! release / execute across simulated processors must preserve every
//! invariant regardless of order.

use parflow::dag::UnitOutcome;
use parflow::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn arb_dag() -> impl Strategy<Value = JobDag> {
    (any::<u64>(), 1usize..5, 1usize..5, 1u64..6, 0u8..=100).prop_map(
        |(seed, layers, width, work, pct)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            shapes::layered_random(
                &mut rng,
                shapes::LayeredParams {
                    layers,
                    max_width: width,
                    max_node_work: work,
                    extra_edge_pct: pct,
                },
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A chaotic driver: at every step, randomly claim a ready node,
    /// release a claimed node, or execute a unit on a claimed node. The
    /// job must still complete with exact work conservation, and illegal
    /// operations must consistently error without corrupting state.
    #[test]
    fn chaotic_interleavings_preserve_invariants(dag in arb_dag(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cur = DagCursor::new(&dag);
        let mut claimed: Vec<u32> = Vec::new();
        let mut executed = 0u64;
        // Generous step budget: each work unit takes one execute step, and
        // claim/release churn is bounded by the random choices.
        let mut budget = dag.total_work() * 20 + 1000;
        while !cur.is_complete() {
            prop_assert!(budget > 0, "driver failed to make progress");
            budget -= 1;
            match rng.gen_range(0..10u8) {
                // Claim a random ready node (40%).
                0..=3 => {
                    if cur.ready_count() > 0 {
                        let ready = cur.ready_nodes();
                        let v = ready[rng.gen_range(0..ready.len())];
                        cur.claim(v).unwrap();
                        claimed.push(v);
                    }
                }
                // Release a random claimed node (20%).
                4..=5 => {
                    if !claimed.is_empty() {
                        let i = rng.gen_range(0..claimed.len());
                        let v = claimed.swap_remove(i);
                        cur.release(v).unwrap();
                    }
                }
                // Execute a unit on a random claimed node (40%).
                _ => {
                    if !claimed.is_empty() {
                        let i = rng.gen_range(0..claimed.len());
                        let v = claimed[i];
                        executed += 1;
                        if let UnitOutcome::NodeCompleted { .. } =
                            cur.execute_unit(&dag, v).unwrap()
                        {
                            claimed.swap_remove(i);
                        }
                    } else if cur.ready_count() == 0 {
                        // Nothing claimed and nothing ready would deadlock
                        // only if the DAG were complete — guarded above.
                        prop_assert!(cur.ready_count() > 0 || !claimed.is_empty()
                                     || cur.is_complete());
                    }
                }
            }
            // Invariants at every step:
            // a node is never both ready and claimed;
            for &v in &claimed {
                prop_assert!(cur.is_claimed(v));
                prop_assert!(!cur.is_ready(v));
            }
            prop_assert!(cur.executed_units() <= dag.total_work());
        }
        prop_assert_eq!(executed, dag.total_work());
        prop_assert_eq!(cur.executed_units(), dag.total_work());
        prop_assert!(claimed.is_empty());
        prop_assert_eq!(cur.ready_count(), 0);
    }

    /// Illegal operations are rejected at every reachable state without
    /// affecting subsequent progress.
    #[test]
    fn illegal_ops_never_corrupt(dag in arb_dag(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cur = DagCursor::new(&dag);
        let n = dag.num_nodes() as u32;
        // Sprinkle illegal calls, then finish the job normally.
        for _ in 0..50 {
            let v = rng.gen_range(0..n + 3); // occasionally out of range
            if v >= n || !cur.is_ready(v) {
                assert!(cur.claim(v).is_err());
            } else {
                cur.claim(v).unwrap();
                cur.release(v).unwrap();
            }
            if v >= n || !cur.is_claimed(v) {
                assert!(cur.execute_unit(&dag, v).is_err());
                assert!(cur.release(v).is_err());
            }
        }
        // Clean completion still possible.
        while !cur.is_complete() {
            let v = cur.ready_nodes()[0];
            cur.claim(v).unwrap();
            while let UnitOutcome::InProgress = cur.execute_unit(&dag, v).unwrap() {}
        }
        prop_assert_eq!(cur.executed_units(), dag.total_work());
    }
}
