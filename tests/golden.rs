//! Golden regression tests: exact outputs pinned for fixed seeds.
//!
//! Every engine in this workspace is bit-deterministic given its inputs;
//! these tests freeze that behaviour so refactors cannot silently change
//! schedules. If a change *intentionally* alters scheduling behaviour,
//! update the constants here and say so in the commit message.
//!
//! Constants re-frozen 2026-08: the original pinned values predate the
//! first successful build of this workspace and did not correspond to any
//! runnable RNG stream. The current values were produced by a rand-0.8.5
//! compatible `SmallRng` (xoshiro256++ / SplitMix64 seeding) validated
//! against the official xoshiro reference vectors
//! (`vendor/offline-stubs/rand/tests/reference.rs`).

use parflow::core::SchedulerKind;
use parflow::prelude::*;

fn golden_instance() -> Instance {
    WorkloadSpec::paper_fig2(DistKind::Bing, 600.0, 500, 0xC0FFEE).generate()
}

#[test]
fn workload_generation_is_frozen() {
    let inst = golden_instance();
    assert_eq!(inst.len(), 500);
    assert_eq!(inst.total_work(), 59_950);
    assert_eq!(inst.last_arrival(), 8_439);
    assert_eq!(inst.max_work(), 1_452);
    assert_eq!(inst.max_span(), 12);
}

#[test]
fn scheduler_outputs_are_frozen() {
    let inst = golden_instance();
    let cfg = SimConfig::new(8).with_free_steals();
    // (scheduler, expected max flow in ticks as (num, den))
    let expectations: &[(SchedulerKind, i128, i128)] = &[
        (SchedulerKind::Fifo, 345, 1),
        (SchedulerKind::Bwf, 345, 1),
        (SchedulerKind::Equi, 1_527, 1),
        (SchedulerKind::AdmitFirst, 1_305, 1),
        (SchedulerKind::StealKFirst(16), 467, 1),
    ];
    for &(kind, num, den) in expectations {
        let r = kind.run(&inst, &cfg, 12345).0;
        assert_eq!(
            r.max_flow(),
            Rational::new(num, den),
            "{kind} max flow drifted (got {})",
            r.max_flow()
        );
    }
}

#[test]
fn opt_bound_is_frozen() {
    let inst = golden_instance();
    assert_eq!(opt_max_flow(&inst, 8), Rational::from_int(336));
}

#[test]
fn lower_bound_instance_is_frozen() {
    let inst = lower_bound_instance(64, 40);
    let cfg = SimConfig::new(40);
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 99);
    // Deterministic for this seed: pinned exact value.
    assert_eq!(r.max_flow(), Rational::from_int(5));
    assert_eq!(r.stats.work_steps, inst.total_work());
}

#[test]
fn stats_are_frozen_for_ws() {
    let inst = golden_instance();
    let cfg = SimConfig::new(8);
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 4 }, 777);
    assert_eq!(r.stats.work_steps, 59_950);
    assert_eq!(r.stats.admissions, 500);
    // Steal counters are part of the frozen behaviour too.
    assert_eq!(
        (r.stats.steal_attempts, r.stats.successful_steals),
        (9_650, 3_121),
        "steal accounting drifted: {:?}",
        r.stats
    );
}
