//! Integration tests of the OPT lower bound against every scheduler, plus
//! hand-computable end-to-end cases.

use parflow::core::{combined_lower_bound, simulate_bwf, span_lower_bound};
use parflow::prelude::*;
use std::sync::Arc;

fn mixed_instance(seed: u64, n: usize, qps: f64) -> Instance {
    WorkloadSpec::paper_fig2(DistKind::Bing, qps, n, seed).generate()
}

#[test]
fn opt_lower_bounds_all_unit_speed_schedulers() {
    for seed in [1u64, 2, 3, 4, 5] {
        let inst = mixed_instance(seed, 100, 2000.0);
        let m = 8;
        let cfg = SimConfig::new(m);
        let cfg_free = SimConfig::new(m).with_free_steals();
        let opt = opt_max_flow(&inst, m);
        assert!(simulate_fifo(&inst, &cfg).max_flow() >= opt);
        assert!(simulate_bwf(&inst, &cfg).max_flow() >= opt);
        for policy in [StealPolicy::AdmitFirst, StealPolicy::StealKFirst { k: 16 }] {
            assert!(simulate_worksteal(&inst, &cfg, policy, seed).max_flow() >= opt);
            assert!(simulate_worksteal(&inst, &cfg_free, policy, seed).max_flow() >= opt);
        }
    }
}

#[test]
fn span_bound_holds_per_job() {
    let inst = mixed_instance(7, 80, 1500.0);
    let cfg = SimConfig::new(8).with_free_steals();
    let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 11);
    for o in &r.outcomes {
        let span = inst.jobs()[o.job as usize].span();
        assert!(
            o.flow >= Rational::from_int(span as i128),
            "job {} flow {} < span {}",
            o.job,
            o.flow,
            span
        );
    }
    assert!(r.max_flow() >= span_lower_bound(&inst));
    assert!(r.max_flow() >= combined_lower_bound(&inst, 8));
}

#[test]
fn single_wide_job_all_schedulers_hit_span_on_enough_cores() {
    // A diamond of width 4 with unit nodes on m ≥ 4 cores completes in
    // exactly span rounds under FIFO (greedy, centralized).
    let dag = Arc::new(shapes::diamond(4, 1));
    let inst = Instance::new(vec![Job::new(0, 0, dag)]);
    let r = simulate_fifo(&inst, &SimConfig::new(8));
    assert_eq!(r.max_flow(), Rational::from_int(3));
}

#[test]
fn backlogged_sequential_jobs_match_closed_form() {
    // n unit-work sequential jobs all arriving at 0 on m cores: FIFO
    // completes them in batches of m; max flow = ceil(n/m).
    let dag = Arc::new(shapes::single_node(1));
    for (n, m, expect) in [(10u32, 2usize, 5i128), (7, 3, 3), (16, 16, 1), (17, 16, 2)] {
        let jobs: Vec<Job> = (0..n).map(|i| Job::new(i, 0, Arc::clone(&dag))).collect();
        let inst = Instance::new(jobs);
        let r = simulate_fifo(&inst, &SimConfig::new(m));
        assert_eq!(r.max_flow(), Rational::from_int(expect), "n={n} m={m}");
        // And the OPT reduction gives n·(1/m) stacked: max flow n/m.
        assert_eq!(
            opt_max_flow(&inst, m),
            Rational::new(n as i128, m as i128).max(Rational::new(n as i128, m as i128)),
        );
    }
}

#[test]
fn fifo_beats_or_matches_work_stealing_with_same_resources() {
    // FIFO is the idealized target; on seeded workloads its max flow should
    // not exceed unit-cost work stealing's (which pays for steals).
    for seed in [3u64, 9, 27] {
        let inst = mixed_instance(seed, 120, 2500.0);
        let cfg = SimConfig::new(8);
        let fifo = simulate_fifo(&inst, &cfg).max_flow();
        let ws = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, seed).max_flow();
        assert!(
            fifo <= ws,
            "seed {seed}: FIFO {} should be <= WS {}",
            fifo.to_f64(),
            ws.to_f64()
        );
    }
}

#[test]
fn doubling_processors_never_hurts_opt_bound() {
    let inst = mixed_instance(5, 60, 1200.0);
    let opt8 = opt_max_flow(&inst, 8);
    let opt16 = opt_max_flow(&inst, 16);
    assert!(opt16 <= opt8);
}

#[test]
fn augmented_fifo_can_beat_unit_speed_opt() {
    // Sanity check of the resource-augmentation framing: with 2x speed FIFO
    // on a backlogged instance beats the unit-speed OPT bound.
    let dag = Arc::new(shapes::single_node(10));
    let jobs: Vec<Job> = (0..8).map(|i| Job::new(i, 0, Arc::clone(&dag))).collect();
    let inst = Instance::new(jobs);
    let fast = simulate_fifo(&inst, &SimConfig::new(2).with_speed(Speed::integer(2)));
    assert!(fast.max_flow() < opt_max_flow(&inst, 2));
}

#[test]
fn weighted_lower_bound_dominated_by_bwf_at_unit_speed() {
    let base = mixed_instance(13, 80, 1500.0);
    let jobs: Vec<Job> = base
        .jobs()
        .iter()
        .map(|j| Job::weighted(j.id, j.arrival, 1 + (j.id as u64 % 7), Arc::clone(&j.dag)))
        .collect();
    let inst = Instance::new(jobs);
    let r = simulate_bwf(&inst, &SimConfig::new(8));
    assert!(r.max_weighted_flow() >= opt_weighted_lower_bound(&inst, 8));
}
