//! End-to-end test of the compiled `parflow` binary: real process spawn,
//! real argv, real exit codes.

use std::process::Command;

/// True when a real `serde_json` is linked into the binary under test (the
/// offline build stubs it out; see vendor/offline-stubs/README.md).
fn serde_available() -> bool {
    serde_json::from_str::<i32>("1").is_ok()
}

fn parflow(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_parflow"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn compare_succeeds_and_prints_table() {
    let out = parflow(&[
        "compare", "--dist", "finance", "--qps", "2000", "--jobs", "200", "--m", "4",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fifo"));
    assert!(stdout.contains("steal-16-first"));
    assert!(stdout.contains("max flow"));
}

#[test]
fn bad_command_exits_nonzero_with_usage() {
    let out = parflow(&["launch-missiles"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"));
    assert!(stderr.contains("usage:"));
}

#[test]
fn missing_flag_exits_nonzero() {
    let out = parflow(&["simulate", "--jobs", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scheduler"));
}

#[test]
fn dot_pipes_cleanly() {
    let out = parflow(&["dot", "--shape", "fork-join", "--depth", "2", "--leaf", "3"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph fork_join {"));
    assert!(stdout.contains("->"));
}

#[test]
fn generate_then_analyze_roundtrip() {
    if !serde_available() {
        eprintln!("skipping: serde_json is stubbed in this offline build");
        return;
    }
    let dir = std::env::temp_dir().join("parflow_cli_binary_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wl.json");
    let path_s = path.to_str().unwrap();

    let out = parflow(&[
        "generate", "--dist", "bing", "--qps", "3000", "--jobs", "80", "--out", path_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote 80 jobs"));

    let out = parflow(&["analyze", "--in", path_s, "--scheduler", "equi", "--m", "4"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("interval decomposition"));
    std::fs::remove_file(path).unwrap();
}
