//! Cross-crate integration: every scheduler, on every workload family, at
//! several speeds and steal-cost models, produces a trace that passes the
//! independent validator, and its reported outcomes are consistent with the
//! trace.

use parflow::core::{
    run_priority, run_worksteal, BiggestWeightFirst, Fifo, Lifo, SimConfig, StealPolicy,
};
use parflow::prelude::*;
use parflow::workloads::lower_bound_instance;

fn workloads() -> Vec<(&'static str, Instance)> {
    vec![
        (
            "bing-parfor",
            WorkloadSpec::paper_fig2(DistKind::Bing, 1500.0, 60, 1).generate(),
        ),
        (
            "finance-parfor",
            WorkloadSpec::paper_fig2(DistKind::Finance, 1500.0, 60, 2).generate(),
        ),
        (
            "lognormal-seq",
            WorkloadSpec {
                dist: DistKind::LogNormal,
                shape: ShapeKind::Sequential,
                qps: Some(2000.0),
                period_ticks: 0,
                n_jobs: 40,
                seed: 3,
            }
            .generate(),
        ),
        (
            "forkjoin",
            WorkloadSpec {
                dist: DistKind::Uniform { lo: 20, hi: 200 },
                shape: ShapeKind::ForkJoin { leaf: 8 },
                qps: Some(3000.0),
                period_ticks: 0,
                n_jobs: 30,
                seed: 4,
            }
            .generate(),
        ),
        ("adversarial", lower_bound_instance(20, 40)),
    ]
}

fn speeds() -> Vec<Speed> {
    vec![
        Speed::ONE,
        Speed::new(11, 10),
        Speed::new(3, 2),
        Speed::integer(2),
    ]
}

#[test]
fn fifo_traces_validate_everywhere() {
    for (name, inst) in workloads() {
        for speed in speeds() {
            let cfg = SimConfig::new(4).with_speed(speed).with_trace();
            let (result, trace) = run_priority(&inst, &cfg, &Fifo);
            let trace = trace.unwrap();
            assert_eq!(trace.validate(&inst), Ok(()), "{name} at {speed}");
            assert_eq!(result.outcomes.len(), inst.len(), "{name}");
            assert_eq!(result.stats.work_steps, inst.total_work(), "{name}");
        }
    }
}

#[test]
fn bwf_traces_validate_everywhere() {
    for (name, inst) in workloads() {
        let cfg = SimConfig::new(3)
            .with_speed(Speed::new(11, 10))
            .with_trace();
        let (_, trace) = run_priority(&inst, &cfg, &BiggestWeightFirst);
        assert_eq!(trace.unwrap().validate(&inst), Ok(()), "{name}");
    }
}

#[test]
fn lifo_traces_validate_everywhere() {
    for (name, inst) in workloads() {
        let cfg = SimConfig::new(2).with_trace();
        let (_, trace) = run_priority(&inst, &cfg, &Lifo);
        assert_eq!(trace.unwrap().validate(&inst), Ok(()), "{name}");
    }
}

#[test]
fn worksteal_traces_validate_everywhere() {
    for (name, inst) in workloads() {
        for speed in [Speed::ONE, Speed::new(3, 2)] {
            for free in [false, true] {
                for policy in [
                    StealPolicy::AdmitFirst,
                    StealPolicy::StealKFirst { k: 1 },
                    StealPolicy::StealKFirst { k: 16 },
                ] {
                    let mut cfg = SimConfig::new(4).with_speed(speed).with_trace();
                    if free {
                        cfg = cfg.with_free_steals();
                    }
                    let (result, trace) = run_worksteal(&inst, &cfg, policy, 77);
                    let trace = trace.unwrap();
                    assert_eq!(
                        trace.validate(&inst),
                        Ok(()),
                        "{name} {} free={free} at {speed}",
                        policy.name()
                    );
                    assert_eq!(result.stats.work_steps, inst.total_work(), "{name}");
                    // Outcome completion rounds must match the trace length.
                    let max_round = result
                        .outcomes
                        .iter()
                        .map(|o| o.completion_round)
                        .max()
                        .unwrap();
                    assert!(max_round < trace.num_rounds(), "{name}");
                }
            }
        }
    }
}

#[test]
fn trace_work_counts_match_stats() {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 2000.0, 50, 9).generate();
    let cfg = SimConfig::new(4).with_trace();
    let (result, trace) = run_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 4 }, 3);
    let (w, s, _a, i) = trace.unwrap().action_counts();
    assert_eq!(w, result.stats.work_steps);
    assert_eq!(s, result.stats.steal_attempts);
    assert_eq!(i, result.stats.idle_steps);
}
