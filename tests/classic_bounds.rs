//! Classical scheduling-theory bounds checked end to end against the
//! engines. These predate the paper but constrain any correct greedy
//! scheduler, so they double as deep engine validation.

use parflow::core::{run_priority, simulate_equi, Fifo};
use parflow::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Brent's theorem / Graham's greedy bound: a work-conserving scheduler
/// finishes a single DAG of work `W` and span `P` on `m` processors within
/// `W/m + P` time. FIFO with one job is exactly greedy list scheduling.
#[test]
fn brents_bound_holds_for_single_jobs() {
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..50 {
        let dag = shapes::layered_random(
            &mut rng,
            shapes::LayeredParams {
                layers: 6,
                max_width: 8,
                max_node_work: 10,
                extra_edge_pct: 40,
            },
        );
        let (w, p) = (dag.total_work(), dag.span());
        for m in [1usize, 2, 4, 8] {
            let inst = Instance::new(vec![Job::new(0, 0, Arc::new(dag.clone()))]);
            let r = simulate_fifo(&inst, &SimConfig::new(m));
            let bound = Rational::new(w as i128, m as i128) + Rational::from_int(p as i128);
            assert!(
                r.max_flow() <= bound,
                "Brent violated: flow {} > W/m + P = {} (W={w}, P={p}, m={m})",
                r.max_flow().to_f64(),
                bound.to_f64()
            );
            // And the trivial lower bounds.
            assert!(r.max_flow() >= Rational::from_int(p as i128));
            assert!(r.max_flow() >= Rational::new(w as i128, m as i128));
        }
    }
}

/// The same bound holds for EQUI on a single job (with one job EQUI is
/// greedy too).
#[test]
fn brents_bound_holds_for_equi_single_job() {
    let dag = Arc::new(shapes::fork_join(5, 3));
    let (w, p) = (dag.total_work(), dag.span());
    for m in [2usize, 4, 16] {
        let inst = Instance::new(vec![Job::new(0, 0, Arc::clone(&dag))]);
        let r = simulate_equi(&inst, &SimConfig::new(m));
        let bound = Rational::new(w as i128, m as i128) + Rational::from_int(p as i128);
        assert!(r.max_flow() <= bound, "m={m}");
    }
}

/// Batch bound: for jobs all arriving at time 0, any work-conserving
/// schedule's makespan is at most `total_work/m + max_span` (Graham's
/// argument applied to the union DAG) and at least
/// `max(total_work/m, max_span)`.
#[test]
fn batch_makespan_bounds() {
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..20 {
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let dag = shapes::layered_random(&mut rng, shapes::LayeredParams::default());
                Job::new(i, 0, Arc::new(dag))
            })
            .collect();
        let inst = Instance::new(jobs);
        let w = inst.total_work();
        let p = inst.max_span();
        for m in [2usize, 4] {
            let (r, _) = run_priority(&inst, &SimConfig::new(m), &Fifo);
            let makespan = r.makespan();
            let upper = Rational::new(w as i128, m as i128) + Rational::from_int(p as i128);
            let lower = Rational::new(w as i128, m as i128).max(Rational::from_int(p as i128));
            assert!(makespan <= upper, "m={m}: {} > {}", makespan, upper);
            assert!(makespan >= lower, "m={m}: {} < {}", makespan, lower);
        }
    }
}

/// Speed augmentation scales flows by exactly 1/s for a lone job (no
/// queueing): the round count is unchanged, only round duration shrinks.
#[test]
fn lone_job_flow_scales_inversely_with_integer_speed() {
    let dag = Arc::new(shapes::diamond(4, 5));
    let inst = Instance::new(vec![Job::new(0, 0, Arc::clone(&dag))]);
    let base = simulate_fifo(&inst, &SimConfig::new(2)).max_flow();
    for s in [2u64, 3, 5] {
        let fast =
            simulate_fifo(&inst, &SimConfig::new(2).with_speed(Speed::integer(s))).max_flow();
        assert_eq!(fast.mul_ratio(s as i128, 1), base, "speed {s}");
    }
}

/// Flow-time denominators divide the speed numerator: completion times are
/// multiples of den/num, arrivals are integers, so every flow is a
/// rational with denominator dividing `num`.
#[test]
fn flow_denominators_divide_speed_numerator() {
    let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 2500.0, 300, 11).generate();
    for (num, den) in [(11u64, 10u64), (3, 2), (21, 20)] {
        let cfg = SimConfig::new(4).with_speed(Speed::new(num, den));
        let r = simulate_fifo(&inst, &cfg);
        for o in &r.outcomes {
            assert!(
                num as i128 % o.flow.den() == 0,
                "flow {} has denominator not dividing {num}",
                o.flow
            );
        }
    }
}
