//! End-to-end checks of the paper's headline empirical and theoretical
//! claims on seeded (deterministic) workloads.

use parflow::prelude::*;

const M: usize = 16;

/// Section 6 / Figure 2: steal-16-first tracks OPT; admit-first degrades
/// with load; ordering OPT ≤ steal-16 ≤ admit-first at high utilization.
#[test]
fn fig2_ordering_at_high_load() {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1200.0, 8_000, 42).generate();
    let cfg = SimConfig::new(M).with_free_steals();
    let opt = opt_max_flow(&inst, M);
    let steal16 = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 1).max_flow();
    let admit = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 1).max_flow();
    assert!(opt <= steal16);
    assert!(
        steal16 <= admit,
        "steal-16 {} should not exceed admit-first {}",
        steal16.to_f64(),
        admit.to_f64()
    );
    // The paper reports roughly 2x at high load for Bing; require a clear gap.
    assert!(
        admit.to_f64() >= 1.5 * steal16.to_f64(),
        "expected a wide admit-first gap: {} vs {}",
        admit.to_f64(),
        steal16.to_f64()
    );
}

/// Figure 2 monotonicity: max flow grows with load for each scheduler.
#[test]
fn max_flow_monotone_in_load() {
    let cfg = SimConfig::new(M).with_free_steals();
    let mut last_admit = 0.0;
    let mut last_opt = 0.0;
    for qps in [600.0, 1000.0, 1300.0] {
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 6_000, 7).generate();
        let admit = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 3)
            .max_flow()
            .to_f64();
        let opt = opt_max_flow(&inst, M).to_f64();
        assert!(admit >= last_admit * 0.8, "admit-first roughly monotone");
        assert!(opt >= last_opt * 0.8, "OPT roughly monotone");
        last_admit = admit;
        last_opt = opt;
    }
}

/// Theorem 3.1: FIFO's ratio to OPT stays below 3/ε at (1+ε) speed.
#[test]
fn fifo_respects_three_over_eps() {
    let qps = qps_for_utilization(DistKind::Bing, M, 0.95);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 5_000, 5).generate();
    let opt = opt_max_flow(&inst, M);
    for (en, ed) in [(1u64, 10u64), (1, 2), (1, 1)] {
        let cfg = SimConfig::new(M).with_speed(Speed::augmented(en, ed));
        let flow = simulate_fifo(&inst, &cfg).max_flow();
        let eps = en as f64 / ed as f64;
        let ratio = (flow / opt).to_f64();
        assert!(ratio <= 3.0 / eps, "eps={eps}: ratio {ratio} exceeds 3/eps");
    }
}

/// Lemma 5.1: the adversarial instance forces work stealing to Ω(log n)
/// while FIFO stays at the optimum.
#[test]
fn lower_bound_separation() {
    let m = 60;
    let n = 16_000;
    let inst = lower_bound_instance(n, m);
    let cfg = SimConfig::new(m);
    let ws = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 13).max_flow();
    let fifo = simulate_fifo(&inst, &cfg).max_flow();
    assert!(fifo <= Rational::from_int(3), "FIFO near-optimal: {fifo}");
    assert!(
        ws >= Rational::from_int(5),
        "work stealing should hit a sequential gadget: {ws}"
    );
}

/// Section 7: on weighted instances BWF's weighted max flow beats FIFO's
/// when weights span orders of magnitude.
#[test]
fn bwf_beats_fifo_weighted() {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;
    let base = WorkloadSpec::paper_fig2(DistKind::Finance, 900.0, 5_000, 21).generate();
    let mut rng = SmallRng::seed_from_u64(77);
    let jobs: Vec<Job> = base
        .jobs()
        .iter()
        .map(|j| {
            let w = if rng.gen_range(0..50u32) == 0 {
                1_000
            } else {
                1
            };
            Job::weighted(j.id, j.arrival, w, Arc::clone(&j.dag))
        })
        .collect();
    let inst = Instance::new(jobs);
    let cfg = SimConfig::new(M);
    let bwf = parflow::core::simulate_bwf(&inst, &cfg).max_weighted_flow();
    let fifo = simulate_fifo(&inst, &cfg).max_weighted_flow();
    assert!(
        bwf < fifo,
        "BWF {} should beat FIFO {} on weighted max flow",
        bwf.to_f64(),
        fifo.to_f64()
    );
}

/// Determinism: the whole pipeline (workload → schedule → stats) is
/// bit-reproducible for fixed seeds.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let inst = WorkloadSpec::paper_fig2(DistKind::LogNormal, 1000.0, 2_000, 99).generate();
        let cfg = SimConfig::new(M).with_free_steals();
        let r = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 4);
        (r.max_flow(), r.stats)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}
