//! Differential proof of the streaming engines and the incremental OPT
//! tracker.
//!
//! The O(active)-memory streaming paths (`run_worksteal_stream`,
//! `run_priority_stream`) retire completed jobs into a free-listed slab
//! instead of materializing the instance. Across random instances, for
//! **every prefix length n**, replaying the first n jobs through the
//! stream must be bit-identical to the materialized engine run on an
//! instance of those same n jobs — same stats, round count, outcomes,
//! backlog samples, max flow and schedule trace. Likewise the incremental
//! [`OptTracker`] must equal the batch lower bounds after every single
//! arrival, and the `u32` job-id space must fail closed (satellite of the
//! sweep grid's jobs-axis validation).

use parflow::core::{
    combined_lower_bound, opt_flows, opt_max_flow, run_priority, run_priority_stream,
    run_worksteal, run_worksteal_stream, run_worksteal_stream_with_base, span_lower_bound, Fifo,
    InstanceReplay, OptTracker, SimConfig, StreamError,
};
use parflow::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random small instance of mixed DAG shapes and arrival patterns —
/// kept smaller than `engine_differential`'s generator because every case
/// here runs all n prefixes (O(n²) simulations per case).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (any::<u64>(), 1usize..9, 0u64..50).prop_map(|(seed, njobs, spread)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let jobs = (0..njobs)
            .map(|i| {
                let arrival = if spread == 0 {
                    0
                } else {
                    rng.gen_range(0..=spread)
                };
                let dag = match rng.gen_range(0..4u8) {
                    0 => shapes::single_node(rng.gen_range(1..25)),
                    1 => shapes::chain(rng.gen_range(1..5), rng.gen_range(1..5)),
                    2 => shapes::parallel_for(rng.gen_range(1..30), rng.gen_range(1..6)),
                    _ => shapes::fork_join(rng.gen_range(0..4), rng.gen_range(1..5)),
                };
                Job::weighted(i as u32, arrival, rng.gen_range(1..8u64), Arc::new(dag))
            })
            .collect();
        Instance::new(jobs)
    })
}

/// The first `n` jobs of `inst` as a materialized instance. The jobs are
/// already arrival-sorted with dense ids, so `Instance::new` is an
/// identity re-wrap and the stream-assigned ids line up exactly.
fn prefix_instance(inst: &Instance, n: usize) -> Instance {
    Instance::new(inst.jobs()[..n].to_vec())
}

/// Stream the first `n` jobs through the work-stealing engine and assert
/// bit-identity with the materialized run of the same prefix.
fn assert_ws_prefix_identical(
    inst: &Instance,
    n: usize,
    cfg: &SimConfig,
    policy: StealPolicy,
    seed: u64,
) {
    let prefix = prefix_instance(inst, n);
    let (batch, batch_trace) = run_worksteal(&prefix, cfg, policy, seed);
    let mut outs = Vec::new();
    let mut replay = InstanceReplay::prefix(inst, n);
    let (sum, trace) = run_worksteal_stream(&mut replay, cfg, policy, seed, &mut |o| {
        outs.push(o.clone())
    })
    .expect("replay of an instance is sorted and fault-free");
    assert_eq!(sum.jobs, n as u64, "prefix {n}: jobs");
    assert_eq!(sum.stats, batch.stats, "prefix {n}: stats");
    assert_eq!(sum.total_rounds, batch.total_rounds, "prefix {n}: rounds");
    assert_eq!(sum.max_flow, batch.max_flow(), "prefix {n}: max flow");
    assert_eq!(sum.samples, batch.samples, "prefix {n}: samples");
    // Outcomes reach the sink in completion order; compare keyed by id.
    outs.sort_by_key(|o| o.job);
    assert_eq!(outs, batch.outcomes, "prefix {n}: outcomes");
    assert_eq!(trace, batch_trace, "prefix {n}: trace");
    // All n jobs retired, and the slab never held more than the prefix.
    assert_eq!(sum.retire.jobs_retired, n as u64, "prefix {n}: retired");
    assert!(sum.retire.live_jobs_high_water <= n as u64, "prefix {n}");
    // The agreed-upon schedule must also satisfy the paper invariants
    // (P1–P5), machine-checked by the independent certifier.
    if let Some(t) = &batch_trace {
        let report = parflow_certify::certify_run(&prefix, cfg, Some(policy), &batch, t);
        assert!(report.is_clean(), "prefix {n}: {}", report.render());
    }
}

/// Same contract for the centralized streaming engine under FIFO.
fn assert_fifo_prefix_identical(inst: &Instance, n: usize, cfg: &SimConfig) {
    let prefix = prefix_instance(inst, n);
    let (batch, batch_trace) = run_priority(&prefix, cfg, &Fifo);
    let mut outs = Vec::new();
    let mut replay = InstanceReplay::prefix(inst, n);
    let (sum, trace) = run_priority_stream(&mut replay, cfg, &Fifo, &mut |o| outs.push(o.clone()))
        .expect("replay of an instance is sorted and fault-free");
    assert_eq!(sum.jobs, n as u64, "prefix {n}: jobs");
    assert_eq!(sum.stats, batch.stats, "prefix {n}: stats");
    assert_eq!(sum.total_rounds, batch.total_rounds, "prefix {n}: rounds");
    assert_eq!(sum.max_flow, batch.max_flow(), "prefix {n}: max flow");
    assert_eq!(sum.samples, batch.samples, "prefix {n}: samples");
    outs.sort_by_key(|o| o.job);
    assert_eq!(outs, batch.outcomes, "prefix {n}: outcomes");
    assert_eq!(trace, batch_trace, "prefix {n}: trace");
    if let Some(t) = &batch_trace {
        let report = parflow_certify::certify_run(&prefix, cfg, None, &batch, t);
        assert!(report.is_clean(), "prefix {n}: {}", report.render());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work-stealing stream ≡ materialized run, for every prefix length.
    #[test]
    fn worksteal_stream_is_bit_identical_on_every_prefix(
        inst in arb_instance(),
        m in 1usize..5,
        k in 0u32..4,
        seed in any::<u64>(),
        traced in any::<bool>()
    ) {
        let mut cfg = SimConfig::new(m);
        if traced {
            cfg = cfg.with_trace();
        }
        let policy = if k == 0 {
            StealPolicy::AdmitFirst
        } else {
            StealPolicy::StealKFirst { k }
        };
        for n in 1..=inst.len() {
            assert_ws_prefix_identical(&inst, n, &cfg, policy, seed);
        }
    }

    /// Centralized stream ≡ materialized run, for every prefix length,
    /// including fractional speed augmentation and backlog sampling.
    #[test]
    fn centralized_stream_is_bit_identical_on_every_prefix(
        inst in arb_instance(),
        m in 1usize..5,
        fast in any::<bool>(),
        sample in 0u64..3
    ) {
        let mut cfg = SimConfig::new(m).with_trace();
        if fast {
            cfg = cfg.with_speed(Speed::new(11, 10));
        }
        if sample > 0 {
            cfg = cfg.with_sampling(sample);
        }
        for n in 1..=inst.len() {
            assert_fifo_prefix_identical(&inst, n, &cfg);
        }
    }

    /// The incremental OPT tracker equals the batch lower bounds after
    /// EVERY arrival, and `on_arrival` returns exactly the per-job flow
    /// `opt_flows` would compute at that index.
    #[test]
    fn opt_tracker_matches_batch_after_every_arrival(
        inst in arb_instance(),
        m in 1usize..9
    ) {
        let mut tracker = OptTracker::new(m);
        let flows = opt_flows(&inst, m);
        for (i, job) in inst.jobs().iter().enumerate() {
            let flow = tracker.on_arrival(job.arrival, job.work(), job.span());
            assert_eq!(flow, flows[i], "arrival {i}: per-job OPT flow");
            let prefix = prefix_instance(&inst, i + 1);
            assert_eq!(
                tracker.opt_max_flow(),
                opt_max_flow(&prefix, m),
                "arrival {i}: opt_max_flow"
            );
            assert_eq!(
                tracker.span_lower_bound(),
                span_lower_bound(&prefix),
                "arrival {i}: span_lower_bound"
            );
            assert_eq!(
                tracker.combined_lower_bound(),
                combined_lower_bound(&prefix, m),
                "arrival {i}: combined_lower_bound"
            );
            assert_eq!(tracker.arrivals(), (i + 1) as u64);
        }
    }
}

/// Satellite regression: the `u32` job-id space fails closed. Seeding the
/// stream near the top of the id space (as a resharded producer would)
/// must surface `TooManyJobs` with the first id that did not fit, instead
/// of silently wrapping — and a stream that stops exactly at `u32::MAX`
/// must still run to completion.
#[test]
fn job_id_overflow_is_a_checked_error() {
    let inst = Instance::new(
        (0..6)
            .map(|i| Job::new(i, i as u64 * 4, Arc::new(shapes::single_node(3))))
            .collect(),
    );
    let cfg = SimConfig::new(2);
    let policy = StealPolicy::StealKFirst { k: 2 };

    // Base chosen so ids MAX-2, MAX-1, MAX fit and the 4th job overflows.
    let base = u32::MAX as u64 - 2;
    let mut replay = InstanceReplay::new(&inst);
    let err = run_worksteal_stream_with_base(
        &mut replay,
        &cfg,
        policy,
        7,
        &mut |_| {},
        &mut NullRecorder,
        base,
    )
    .expect_err("4th id exceeds u32");
    assert_eq!(err, StreamError::TooManyJobs(u32::MAX as u64 + 1));

    // Exactly filling the id space is fine, and the run is the same
    // schedule as a base-0 run with every outcome id shifted by the base.
    let top = u32::MAX as u64 - 5;
    let mut shifted_ids = Vec::new();
    let mut replay = InstanceReplay::new(&inst);
    let (sum_top, _) = run_worksteal_stream_with_base(
        &mut replay,
        &cfg,
        policy,
        7,
        &mut |o| shifted_ids.push(o.job),
        &mut NullRecorder,
        top,
    )
    .expect("ids end exactly at u32::MAX");
    let mut base_ids = Vec::new();
    let mut replay = InstanceReplay::new(&inst);
    let (sum_zero, _) = run_worksteal_stream_with_base(
        &mut replay,
        &cfg,
        policy,
        7,
        &mut |o| base_ids.push(o.job),
        &mut NullRecorder,
        0,
    )
    .expect("base 0 streams cleanly");
    assert_eq!(sum_top.stats, sum_zero.stats);
    assert_eq!(sum_top.max_flow, sum_zero.max_flow);
    assert_eq!(sum_top.total_rounds, sum_zero.total_rounds);
    let unshifted: Vec<u32> = shifted_ids
        .iter()
        .map(|id| (*id as u64 - top) as u32)
        .collect();
    assert_eq!(unshifted, base_ids);
    assert_eq!(*shifted_ids.iter().max().unwrap(), u32::MAX);
}

/// An out-of-order stream is rejected with the offending pull index, not
/// simulated wrong.
#[test]
fn unsorted_stream_is_a_checked_error() {
    struct Unsorted(u32);
    impl parflow::core::JobStream for Unsorted {
        fn next_job(&mut self) -> Option<parflow::core::StreamedJob> {
            self.0 += 1;
            (self.0 <= 3).then(|| parflow::core::StreamedJob {
                // Arrivals 20, 10, ... — the second pull violates order.
                arrival: if self.0 == 1 { 20 } else { 10 },
                weight: 1,
                dag: Arc::new(shapes::single_node(2)),
            })
        }
    }
    let err = run_worksteal_stream(
        &mut Unsorted(0),
        &SimConfig::new(2),
        StealPolicy::AdmitFirst,
        1,
        &mut |_| {},
    )
    .expect_err("second job arrives before the first");
    assert_eq!(err, StreamError::UnsortedArrivals { index: 1 });
}
