//! The `parflow` CLI: simulate, compare, generate, analyze, exec, dot.
//! All logic lives in `parflow::cli` (unit-tested); this wrapper only
//! forwards arguments and sets the exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parflow::cli::run_cli(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  parflow simulate --dist bing|finance|lognormal --qps N --jobs N \\");
            eprintln!("                   --m N --scheduler fifo|bwf|lifo|sjf|equi|admit-first|steal-<k>-first \\");
            eprintln!("                   [--speed NUM[/DEN]] [--steals free|unit] [--seed N] [--grain N]");
            eprintln!(
                "                   [--faults crash:W@R,slow:WxF,stall:W@R+D,blackhole:W,panic:P]"
            );
            eprintln!("  parflow compare  <same workload flags>");
            eprintln!("  parflow generate <same workload flags> --out FILE.json");
            eprintln!("  parflow analyze  --in FILE.json [--scheduler S] [--m N] [--eps NUM/DEN]");
            eprintln!(
                "  parflow exec     <workload flags> --policy admit-first|steal-<k>-first \\"
            );
            eprintln!("                   [--faults SPEC] [--deadline 30s|500ms] [--compress N] [--iters-per-unit N] [--obs-json FILE]");
            eprintln!("  parflow dot      --shape single|chain|diamond|parallel-for|fork-join|map-reduce|pipeline|adversarial [shape flags]");
            std::process::exit(2);
        }
    }
}
