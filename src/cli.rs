//! The `parflow` command-line interface, as a library so every command is
//! unit-testable. The binary (`src/bin/parflow.rs`) is a thin wrapper.
//!
//! ```text
//! parflow simulate --dist bing --qps 1000 --jobs 5000 --scheduler steal-16-first
//! parflow compare  --dist finance --qps 900 --jobs 5000
//! parflow generate --dist lognormal --qps 1200 --jobs 1000 --out inst.json
//! parflow analyze  --in inst.json --scheduler fifo --eps 1/10
//! parflow dot      --shape fork-join --depth 3 --leaf 4
//! ```

use crate::core::{
    analyze_intervals, opt_max_flow, SchedulerKind, SimConfig,
};
use crate::metrics::{FlowStats, Table};
use crate::time::{Rational, Speed};
use crate::workloads::{trace_io, DistKind, InstanceStats, ShapeKind, WorkloadSpec};
use parflow_dag::{shapes, Instance};
use std::collections::HashMap;
use std::fmt;

/// CLI errors (all user-facing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand or an unknown one.
    UnknownCommand(String),
    /// A flag was given without a value or with an unparsable one.
    BadFlag(String, String),
    /// A required flag is missing.
    MissingFlag(String),
    /// Filesystem / serde problem (message only, for testability).
    Io(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command '{c}'; try simulate|compare|generate|analyze|dot")
            }
            CliError::BadFlag(k, v) => write!(f, "bad value '{v}' for --{k}"),
            CliError::MissingFlag(k) => write!(f, "missing required flag --{k}"),
            CliError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed `--key value` flags.
pub struct Flags(HashMap<String, String>);

impl Flags {
    /// Parse flags from arguments after the subcommand. Flags must come as
    /// `--key value` pairs.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| CliError::BadFlag(a.clone(), "expected --flag".into()))?;
            let value = it
                .next()
                .ok_or_else(|| CliError::BadFlag(key.into(), "missing value".into()))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Flags(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError::BadFlag(key.into(), v.into())),
        }
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        Ok(self.parse_opt(key)?.unwrap_or(default))
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| CliError::MissingFlag(key.into()))
    }
}

fn parse_dist(s: &str) -> Result<DistKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "bing" => Ok(DistKind::Bing),
        "finance" => Ok(DistKind::Finance),
        "lognormal" | "log-normal" => Ok(DistKind::LogNormal),
        other => Err(CliError::BadFlag("dist".into(), other.into())),
    }
}

fn parse_speed(s: &str) -> Result<Speed, CliError> {
    let err = || CliError::BadFlag("speed".into(), s.into());
    if let Some((num, den)) = s.split_once('/') {
        let num: u64 = num.parse().map_err(|_| err())?;
        let den: u64 = den.parse().map_err(|_| err())?;
        if num == 0 || den == 0 {
            return Err(err());
        }
        Ok(Speed::new(num, den))
    } else {
        let v: u64 = s.parse().map_err(|_| err())?;
        if v == 0 {
            return Err(err());
        }
        Ok(Speed::integer(v))
    }
}

fn parse_rational(key: &str, s: &str) -> Result<Rational, CliError> {
    let err = || CliError::BadFlag(key.into(), s.into());
    if let Some((num, den)) = s.split_once('/') {
        let num: i128 = num.parse().map_err(|_| err())?;
        let den: i128 = den.parse().map_err(|_| err())?;
        if den == 0 {
            return Err(err());
        }
        Ok(Rational::new(num, den))
    } else {
        let v: i128 = s.parse().map_err(|_| err())?;
        Ok(Rational::from_int(v))
    }
}

fn workload_from_flags(flags: &Flags) -> Result<(WorkloadSpec, usize), CliError> {
    let dist = parse_dist(flags.get("dist").unwrap_or("bing"))?;
    let qps: f64 = flags.parse_or("qps", 1000.0)?;
    if qps <= 0.0 || !qps.is_finite() {
        return Err(CliError::BadFlag("qps".into(), qps.to_string()));
    }
    let jobs: usize = flags.parse_or("jobs", 10_000)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let grain: u64 = flags.parse_or("grain", 10u64)?;
    let m: usize = flags.parse_or("m", 16usize)?;
    if m == 0 {
        return Err(CliError::BadFlag("m".into(), "0".into()));
    }
    let spec = WorkloadSpec {
        dist,
        shape: ShapeKind::ParallelFor { grain: grain.max(1) },
        qps: Some(qps),
        period_ticks: 0,
        n_jobs: jobs,
        seed,
    };
    Ok((spec, m))
}

fn config_from_flags(flags: &Flags, m: usize) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::new(m);
    if let Some(s) = flags.get("speed") {
        cfg = cfg.with_speed(parse_speed(s)?);
    }
    match flags.get("steals").unwrap_or("free") {
        "free" => cfg = cfg.with_free_steals(),
        "unit" => {}
        other => return Err(CliError::BadFlag("steals".into(), other.into())),
    }
    Ok(cfg)
}

fn result_summary(
    name: &str,
    inst: &Instance,
    cfg: &SimConfig,
    kind: SchedulerKind,
    seed: u64,
) -> (String, Vec<String>) {
    let r = kind.run(inst, cfg, seed).0;
    let flows: Vec<Rational> = r.outcomes.iter().map(|o| o.flow).collect();
    let stats = FlowStats::from_flows(&flows).expect("non-empty instance");
    let opt = opt_max_flow(inst, cfg.m);
    let row = vec![
        name.to_string(),
        format!("{:.1}", stats.max.to_f64()),
        format!("{:.2}", (stats.max / opt).to_f64()),
        format!("{:.1}", stats.mean),
        format!("{:.1}", stats.p99),
        format!("{:.3}", r.busy_fraction()),
    ];
    (name.to_string(), row)
}

fn simulate_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, m) = workload_from_flags(flags)?;
    let kind: SchedulerKind = flags
        .require("scheduler")?
        .parse()
        .map_err(|e: crate::core::ParseSchedulerError| {
            CliError::BadFlag("scheduler".into(), e.0)
        })?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let cfg = config_from_flags(flags, m)?;
    let inst = spec.generate();
    if inst.is_empty() {
        return Err(CliError::BadFlag("jobs".into(), "0".into()));
    }
    let mut t = Table::new(["scheduler", "max flow", "vs OPT", "mean", "p99", "busy"]);
    let (_, row) = result_summary(&kind.to_string(), &inst, &cfg, kind, seed);
    t.row(row);
    let util = inst.utilization(m).map(|u| u.to_f64()).unwrap_or(0.0);
    let stats = InstanceStats::of(&inst).expect("non-empty");
    Ok(format!(
        "workload: {} @{:.0} QPS, m={m}, utilization {:.0}% (flows in ticks; 1 tick = 0.1 ms)\n{stats}\n{}",
        spec.dist.name(),
        spec.qps.unwrap_or(0.0),
        util * 100.0,
        t.render()
    ))
}

fn compare_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, m) = workload_from_flags(flags)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let cfg = config_from_flags(flags, m)?;
    let inst = spec.generate();
    if inst.is_empty() {
        return Err(CliError::BadFlag("jobs".into(), "0".into()));
    }
    let mut t = Table::new(["scheduler", "max flow", "vs OPT", "mean", "p99", "busy"]);
    for kind in SchedulerKind::all() {
        let (_, row) = result_summary(&kind.to_string(), &inst, &cfg, kind, seed);
        t.row(row);
    }
    Ok(t.render())
}

fn generate_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, _) = workload_from_flags(flags)?;
    let out = flags.require("out")?;
    let inst = spec.generate();
    trace_io::save_instance(&inst, out).map_err(|e| CliError::Io(e.to_string()))?;
    Ok(format!(
        "wrote {} jobs ({} total work units) to {out}",
        inst.len(),
        inst.total_work()
    ))
}

fn analyze_cmd(flags: &Flags) -> Result<String, CliError> {
    let path = flags.require("in")?;
    let inst = trace_io::load_instance(path).map_err(|e| CliError::Io(e.to_string()))?;
    if inst.is_empty() {
        return Err(CliError::Io("instance is empty".into()));
    }
    let kind: SchedulerKind = flags
        .get("scheduler")
        .unwrap_or("steal-16-first")
        .parse()
        .map_err(|e: crate::core::ParseSchedulerError| {
            CliError::BadFlag("scheduler".into(), e.0)
        })?;
    let m: usize = flags.parse_or("m", 16usize)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let eps = parse_rational("eps", flags.get("eps").unwrap_or("1/10"))?;
    if !eps.is_positive() {
        return Err(CliError::BadFlag("eps".into(), eps.to_string()));
    }
    let cfg = config_from_flags(flags, m)?;
    let r = kind.run(&inst, &cfg, seed).0;
    let a = analyze_intervals(&r, eps).expect("non-empty");
    let mut out = format!(
        "{kind} on {} jobs, m={m}: max flow {:.1} ticks (job J_{}), OPT >= {:.1}\n",
        inst.len(),
        a.flow.to_f64(),
        a.job,
        opt_max_flow(&inst, m).to_f64()
    );
    out.push_str(&format!(
        "interval decomposition (eps = {eps}): beta = {}, t' = {:.1}\n",
        a.beta(),
        a.t_prime.to_f64()
    ));
    let mut t = Table::new(["start", "end", "length", "defining job"]);
    for iv in &a.intervals {
        t.row([
            format!("{:.1}", iv.start.to_f64()),
            format!("{:.1}", iv.end.to_f64()),
            format!("{:.1}", iv.len().to_f64()),
            iv.defining_job
                .map(|j| format!("J_{j}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

fn dot_cmd(flags: &Flags) -> Result<String, CliError> {
    let shape = flags.require("shape")?;
    let dag = match shape {
        "single" => shapes::single_node(flags.parse_or("work", 10u64)?),
        "chain" => shapes::chain(flags.parse_or("len", 4usize)?, flags.parse_or("work", 2u64)?),
        "diamond" => shapes::diamond(
            flags.parse_or("width", 4usize)?,
            flags.parse_or("work", 2u64)?,
        ),
        "parallel-for" => shapes::parallel_for(
            flags.parse_or("work", 40u64)?,
            flags.parse_or("chunks", 8usize)?,
        ),
        "fork-join" => shapes::fork_join(
            flags.parse_or("depth", 3u32)?,
            flags.parse_or("leaf", 4u64)?,
        ),
        "map-reduce" => shapes::map_reduce(
            flags.parse_or("mappers", 4usize)?,
            flags.parse_or("map-work", 5u64)?,
            flags.parse_or("reducers", 2usize)?,
            flags.parse_or("reduce-work", 3u64)?,
        ),
        "pipeline" => shapes::pipeline(
            flags.parse_or("stages", 3usize)?,
            flags.parse_or("items", 4usize)?,
            flags.parse_or("work", 2u64)?,
        ),
        "adversarial" => shapes::adversarial_tiny(flags.parse_or("m", 40usize)?),
        other => return Err(CliError::BadFlag("shape".into(), other.into())),
    };
    Ok(dag.to_dot(&shape.replace('-', "_")))
}

/// Entry point: dispatch on the first argument.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::UnknownCommand("<none>".into()))?;
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "simulate" => simulate_cmd(&flags),
        "compare" => compare_cmd(&flags),
        "generate" => generate_cmd(&flags),
        "analyze" => analyze_cmd(&flags),
        "dot" => dot_cmd(&flags),
        other => Err(CliError::UnknownCommand(other.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_command_errors() {
        assert!(matches!(run_cli(&[]), Err(CliError::UnknownCommand(_))));
        assert!(matches!(
            run_cli(&argv("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn simulate_small() {
        let out = run_cli(&argv(
            "simulate --dist finance --qps 2000 --jobs 200 --m 4 --scheduler fifo",
        ))
        .unwrap();
        assert!(out.contains("fifo"));
        assert!(out.contains("max flow"));
        assert!(out.contains("utilization"));
    }

    #[test]
    fn simulate_requires_scheduler() {
        let err = run_cli(&argv("simulate --jobs 10")).unwrap_err();
        assert_eq!(err, CliError::MissingFlag("scheduler".into()));
    }

    #[test]
    fn simulate_rejects_bad_scheduler() {
        let err = run_cli(&argv("simulate --jobs 10 --scheduler warp")).unwrap_err();
        assert!(matches!(err, CliError::BadFlag(k, _) if k == "scheduler"));
    }

    #[test]
    fn compare_lists_all_schedulers() {
        let out = run_cli(&argv("compare --dist bing --qps 3000 --jobs 150 --m 4")).unwrap();
        for name in ["fifo", "bwf", "lifo", "sjf", "equi", "admit-first", "steal-16-first"] {
            assert!(out.contains(name), "missing {name} in output");
        }
    }

    #[test]
    fn generate_and_analyze_roundtrip() {
        let dir = std::env::temp_dir().join("parflow_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.json");
        let path_s = path.to_str().unwrap();
        let out = run_cli(&argv(&format!(
            "generate --dist finance --qps 2000 --jobs 100 --out {path_s}"
        )))
        .unwrap();
        assert!(out.contains("wrote 100 jobs"));
        let out = run_cli(&argv(&format!(
            "analyze --in {path_s} --scheduler fifo --m 4 --eps 1/10"
        )))
        .unwrap();
        assert!(out.contains("interval decomposition"));
        assert!(out.contains("max flow"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn analyze_missing_file_errors() {
        let err = run_cli(&argv("analyze --in /no/such/file.json")).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn dot_shapes() {
        for shape in [
            "single",
            "chain",
            "diamond",
            "parallel-for",
            "fork-join",
            "map-reduce",
            "pipeline",
            "adversarial",
        ] {
            let out = run_cli(&argv(&format!("dot --shape {shape}"))).unwrap();
            assert!(out.starts_with("digraph"), "{shape}: {out}");
        }
        assert!(run_cli(&argv("dot --shape blob")).is_err());
        assert!(matches!(
            run_cli(&argv("dot")),
            Err(CliError::MissingFlag(_))
        ));
    }

    #[test]
    fn speed_parsing() {
        assert_eq!(parse_speed("2").unwrap(), Speed::integer(2));
        assert_eq!(parse_speed("11/10").unwrap(), Speed::new(11, 10));
        assert!(parse_speed("0").is_err());
        assert!(parse_speed("a/b").is_err());
        // and through the full pipeline:
        let out = run_cli(&argv(
            "simulate --jobs 100 --m 4 --qps 2000 --scheduler fifo --speed 11/10",
        ))
        .unwrap();
        assert!(out.contains("fifo"));
    }

    #[test]
    fn steal_cost_flag() {
        assert!(run_cli(&argv(
            "simulate --jobs 50 --m 2 --qps 2000 --scheduler admit-first --steals unit"
        ))
        .is_ok());
        assert!(run_cli(&argv(
            "simulate --jobs 50 --m 2 --qps 2000 --scheduler admit-first --steals maybe"
        ))
        .is_err());
    }

    #[test]
    fn flag_parser_rejects_stragglers() {
        assert!(Flags::parse(&argv("--key")).is_err());
        assert!(Flags::parse(&argv("orphan value")).is_err());
        let f = Flags::parse(&argv("--a 1 --b two")).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.get("b"), Some("two"));
    }
}
