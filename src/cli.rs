//! The `parflow` command-line interface, as a library so every command is
//! unit-testable. The binary (`src/bin/parflow.rs`) is a thin wrapper.
//!
//! ```text
//! parflow simulate --dist bing --qps 1000 --jobs 5000 --scheduler steal-16-first
//! parflow compare  --dist finance --qps 900 --jobs 5000
//! parflow generate --dist lognormal --qps 1200 --jobs 1000 --out inst.json
//! parflow analyze  --in inst.json --scheduler fifo --eps 1/10
//! parflow exec     --jobs 200 --m 4 --faults crash:3@1000,panic:0.01 --deadline 30s
//! parflow exec     --stream --jobs 10000000 --policy steal-16-first
//! parflow serve    run --input subs.jsonl --workers 2 --slo 5000
//! parflow dot      --shape fork-join --depth 3 --leaf 4
//! ```
//!
//! Fault injection (`simulate`, `compare`, `analyze`, `exec`) takes a
//! `--faults` spec: comma-separated `crash:W@R`, `slow:WxF`, `stall:W@R+D`,
//! `blackhole:W`, `panic:P` entries (`W` worker index, `R` round, `D`
//! rounds, `F` speed factor in `(0,1]`, `P` probability in `[0,1]`).
//! Faults apply to the work-stealing schedulers and the real executor;
//! the centralized engines (fifo/bwf/lifo/sjf/equi) model an idealized
//! reliable machine and ignore the plan. `exec` additionally accepts
//! `--deadline` (e.g. `30s`, `500ms`) arming the runtime's no-progress
//! watchdog, and `--obs-json PATH` dumping a machine-readable run report
//! (counters, per-worker telemetry, latency histograms, phase wall times)
//! through the `parflow-obs` observability layer.
//!
//! `exec --stream` (or `--stream on`) swaps the threaded executor for the
//! O(active)-memory streaming simulation core: jobs are pulled one at a
//! time from the workload's endless source and retired on completion, so
//! `--jobs 10000000` runs in a few MB of peak RSS where the materialized
//! path would need the whole instance in memory. Reports exact max flow, the
//! incremental OPT lower bound (live competitive ratio), histogram
//! percentiles, retirement counters, and peak RSS. `--policy` additionally
//! accepts `fifo` (the streaming centralized engine); `--faults` is
//! rejected (the streaming engines model a reliable machine). `--certify`
//! (or `--certify on`) runs the `parflow-certify` exact-arithmetic P5
//! check on the streamed summary — at speed 1 the reported max flow can
//! never beat the incremental OPT lower bound — and appends the
//! certificate line to the report.

use crate::bridge::{instance_to_workload, BridgeConfig};
use crate::core::{
    analyze_intervals, opt_max_flow, FaultPlan, JobStatus, SchedulerKind, SimConfig, PPM,
};
use crate::metrics::{FlowStats, Table};
use crate::runtime::{try_run_workload, RtPolicy, RuntimeConfig, RuntimeError};
use crate::time::{Rational, Speed};
use crate::workloads::{trace_io, DistKind, InstanceStats, ShapeKind, WorkloadSpec};
use parflow_dag::{shapes, Instance};
use parflow_obs::{JsonRecorder, Recorder};
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// CLI errors (all user-facing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand or an unknown one.
    UnknownCommand(String),
    /// A flag was given without a value or with an unparsable one.
    BadFlag(String, String),
    /// A required flag is missing.
    MissingFlag(String),
    /// Filesystem / serde problem (message only, for testability).
    Io(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(
                    f,
                    "unknown command '{c}'; try simulate|compare|generate|analyze|exec|serve|sweep|dot"
                )
            }
            CliError::BadFlag(k, v) => write!(f, "bad value '{v}' for --{k}"),
            CliError::MissingFlag(k) => write!(f, "missing required flag --{k}"),
            CliError::Io(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed `--key value` flags.
pub struct Flags(BTreeMap<String, String>);

impl Flags {
    /// Parse flags from arguments after the subcommand. Flags must come as
    /// `--key value` pairs.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut map = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| CliError::BadFlag(a.clone(), "expected --flag".into()))?;
            let value = it
                .next()
                .ok_or_else(|| CliError::BadFlag(key.into(), "missing value".into()))?;
            map.insert(key.to_string(), value.clone());
        }
        Ok(Flags(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError::BadFlag(key.into(), v.into())),
        }
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        Ok(self.parse_opt(key)?.unwrap_or(default))
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::MissingFlag(key.into()))
    }
}

fn parse_dist(s: &str) -> Result<DistKind, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "bing" => Ok(DistKind::Bing),
        "finance" => Ok(DistKind::Finance),
        "lognormal" | "log-normal" => Ok(DistKind::LogNormal),
        other => Err(CliError::BadFlag("dist".into(), other.into())),
    }
}

fn parse_speed(s: &str) -> Result<Speed, CliError> {
    let err = || CliError::BadFlag("speed".into(), s.into());
    if let Some((num, den)) = s.split_once('/') {
        let num: u64 = num.parse().map_err(|_| err())?;
        let den: u64 = den.parse().map_err(|_| err())?;
        if num == 0 || den == 0 {
            return Err(err());
        }
        Ok(Speed::new(num, den))
    } else {
        let v: u64 = s.parse().map_err(|_| err())?;
        if v == 0 {
            return Err(err());
        }
        Ok(Speed::integer(v))
    }
}

fn parse_rational(key: &str, s: &str) -> Result<Rational, CliError> {
    let err = || CliError::BadFlag(key.into(), s.into());
    if let Some((num, den)) = s.split_once('/') {
        let num: i128 = num.parse().map_err(|_| err())?;
        let den: i128 = den.parse().map_err(|_| err())?;
        if den == 0 {
            return Err(err());
        }
        Ok(Rational::new(num, den))
    } else {
        let v: i128 = s.parse().map_err(|_| err())?;
        Ok(Rational::from_int(v))
    }
}

/// Parse a `--faults` specification: comma-separated entries of
/// `crash:W@R`, `slow:WxF`, `stall:W@R+D`, `blackhole:W`, `panic:P`.
fn parse_faults(s: &str) -> Result<FaultPlan, CliError> {
    let err = |part: &str| CliError::BadFlag("faults".into(), part.into());
    let mut plan = FaultPlan::none();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (kind, spec) = part.split_once(':').ok_or_else(|| err(part))?;
        match kind {
            "crash" => {
                let (w, r) = spec.split_once('@').ok_or_else(|| err(part))?;
                plan = plan.crash(
                    w.parse().map_err(|_| err(part))?,
                    r.parse().map_err(|_| err(part))?,
                );
            }
            "slow" => {
                let (w, f) = spec.split_once('x').ok_or_else(|| err(part))?;
                let factor: f64 = f.parse().map_err(|_| err(part))?;
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(err(part));
                }
                plan = plan.slowdown(
                    w.parse().map_err(|_| err(part))?,
                    (factor * PPM as f64).round() as u32,
                );
            }
            "stall" => {
                let (w, window) = spec.split_once('@').ok_or_else(|| err(part))?;
                let (from, dur) = window.split_once('+').ok_or_else(|| err(part))?;
                plan = plan.stall(
                    w.parse().map_err(|_| err(part))?,
                    from.parse().map_err(|_| err(part))?,
                    dur.parse().map_err(|_| err(part))?,
                );
            }
            "blackhole" => {
                plan = plan.blackhole(spec.parse().map_err(|_| err(part))?);
            }
            "panic" => {
                let p: f64 = spec.parse().map_err(|_| err(part))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err(part));
                }
                plan = plan.with_panic_ppm((p * PPM as f64).round() as u32);
            }
            _ => return Err(err(part)),
        }
    }
    Ok(plan)
}

/// Parse a `--deadline` value: `30s`, `500ms`, or bare seconds (`0.5`).
fn parse_deadline(s: &str) -> Result<Duration, CliError> {
    let err = || CliError::BadFlag("deadline".into(), s.into());
    let (num, scale_ns) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        (s, 1e9)
    };
    let v: f64 = num.parse().map_err(|_| err())?;
    if !v.is_finite() || v <= 0.0 {
        return Err(err());
    }
    Ok(Duration::from_nanos((v * scale_ns) as u64))
}

fn workload_from_flags(flags: &Flags) -> Result<(WorkloadSpec, usize), CliError> {
    let dist = parse_dist(flags.get("dist").unwrap_or("bing"))?;
    let qps: f64 = flags.parse_or("qps", 1000.0)?;
    if qps <= 0.0 || !qps.is_finite() {
        return Err(CliError::BadFlag("qps".into(), qps.to_string()));
    }
    let jobs: usize = flags.parse_or("jobs", 10_000)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let grain: u64 = flags.parse_or("grain", 10u64)?;
    let m: usize = flags.parse_or("m", 16usize)?;
    if m == 0 {
        return Err(CliError::BadFlag("m".into(), "0".into()));
    }
    let spec = WorkloadSpec {
        dist,
        shape: ShapeKind::ParallelFor {
            grain: grain.max(1),
        },
        qps: Some(qps),
        period_ticks: 0,
        n_jobs: jobs,
        seed,
    };
    Ok((spec, m))
}

fn config_from_flags(flags: &Flags, m: usize) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::new(m);
    if let Some(s) = flags.get("speed") {
        cfg = cfg.with_speed(parse_speed(s)?);
    }
    match flags.get("steals").unwrap_or("free") {
        "free" => cfg = cfg.with_free_steals(),
        "unit" => {}
        other => return Err(CliError::BadFlag("steals".into(), other.into())),
    }
    if let Some(s) = flags.get("faults") {
        let plan = parse_faults(s)?;
        // Validate here so a bad plan is a CLI error, not an engine panic.
        plan.validate(m)
            .map_err(|msg| CliError::BadFlag("faults".into(), msg))?;
        cfg = cfg.with_faults(plan);
    }
    Ok(cfg)
}

fn result_summary(
    name: &str,
    inst: &Instance,
    cfg: &SimConfig,
    kind: SchedulerKind,
    seed: u64,
) -> (String, Vec<String>, crate::core::SimResult) {
    let r = kind.run(inst, cfg, seed).0;
    let flows: Vec<Rational> = r.outcomes.iter().map(|o| o.flow).collect();
    // An empty instance (or one whose flows all degrade to non-finite)
    // yields no statistics; report placeholders instead of panicking.
    let row = match FlowStats::from_flows(&flows) {
        Some(stats) => {
            let opt = opt_max_flow(inst, cfg.m);
            vec![
                name.to_string(),
                format!("{:.1}", stats.max.to_f64()),
                format!("{:.2}", (stats.max / opt).to_f64()),
                format!("{:.1}", stats.mean),
                format!("{:.1}", stats.p99),
                format!("{:.3}", r.busy_fraction()),
            ]
        }
        None => {
            let dash = "-".to_string();
            vec![
                name.to_string(),
                dash.clone(),
                dash.clone(),
                dash.clone(),
                dash,
                format!("{:.3}", r.busy_fraction()),
            ]
        }
    };
    (name.to_string(), row, r)
}

/// One line of fault accounting for a simulated run, or `None` when the
/// run was fault-free (keeps fault-free output byte-identical).
fn fault_summary(name: &str, r: &crate::core::SimResult) -> Option<String> {
    if r.fault_events.is_empty() && r.all_completed() {
        return None;
    }
    let completed = r
        .outcomes
        .iter()
        .filter(|o| o.status.is_completed())
        .count();
    Some(format!(
        "{name}: {completed}/{} jobs completed, {} failed (max completed flow {:.1}); \
         {} crashed workers, {} reinjected tasks, {} injected panics",
        r.outcomes.len(),
        r.outcomes.len() - completed,
        r.max_completed_flow().to_f64(),
        r.stats.crashed_workers,
        r.stats.reinjected_tasks,
        r.stats.injected_panics,
    ))
}

fn simulate_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, m) = workload_from_flags(flags)?;
    let kind: SchedulerKind =
        flags
            .require("scheduler")?
            .parse()
            .map_err(|e: crate::core::ParseSchedulerError| {
                CliError::BadFlag("scheduler".into(), e.0)
            })?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let cfg = config_from_flags(flags, m)?;
    let inst = spec.generate();
    if inst.is_empty() {
        return Err(CliError::BadFlag("jobs".into(), "0".into()));
    }
    let mut t = Table::new(["scheduler", "max flow", "vs OPT", "mean", "p99", "busy"]);
    let (name, row, r) = result_summary(&kind.to_string(), &inst, &cfg, kind, seed);
    t.row(row);
    let faults = fault_summary(&name, &r)
        .map(|l| format!("\n{l}"))
        .unwrap_or_default();
    let util = inst.utilization(m).map(|u| u.to_f64()).unwrap_or(0.0);
    let stats = InstanceStats::of(&inst).expect("non-empty");
    Ok(format!(
        "workload: {} @{:.0} QPS, m={m}, utilization {:.0}% (flows in ticks; 1 tick = 0.1 ms)\n{stats}\n{}{faults}",
        spec.dist.name(),
        spec.qps.unwrap_or(0.0),
        util * 100.0,
        t.render()
    ))
}

fn compare_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, m) = workload_from_flags(flags)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let cfg = config_from_flags(flags, m)?;
    let inst = spec.generate();
    if inst.is_empty() {
        return Err(CliError::BadFlag("jobs".into(), "0".into()));
    }
    let mut t = Table::new(["scheduler", "max flow", "vs OPT", "mean", "p99", "busy"]);
    let mut fault_lines = Vec::new();
    for kind in SchedulerKind::all() {
        let (name, row, r) = result_summary(&kind.to_string(), &inst, &cfg, kind, seed);
        t.row(row);
        fault_lines.extend(fault_summary(&name, &r));
    }
    let mut out = t.render();
    for l in &fault_lines {
        out.push('\n');
        out.push_str(l);
    }
    Ok(out)
}

fn generate_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, _) = workload_from_flags(flags)?;
    let out = flags.require("out")?;
    let inst = spec.generate();
    trace_io::save_instance(&inst, out).map_err(|e| CliError::Io(e.to_string()))?;
    Ok(format!(
        "wrote {} jobs ({} total work units) to {out}",
        inst.len(),
        inst.total_work()
    ))
}

fn analyze_cmd(flags: &Flags) -> Result<String, CliError> {
    let path = flags.require("in")?;
    let inst = trace_io::load_instance(path).map_err(|e| CliError::Io(e.to_string()))?;
    if inst.is_empty() {
        return Err(CliError::Io("instance is empty".into()));
    }
    let kind: SchedulerKind = flags
        .get("scheduler")
        .unwrap_or("steal-16-first")
        .parse()
        .map_err(|e: crate::core::ParseSchedulerError| {
            CliError::BadFlag("scheduler".into(), e.0)
        })?;
    let m: usize = flags.parse_or("m", 16usize)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let eps = parse_rational("eps", flags.get("eps").unwrap_or("1/10"))?;
    if !eps.is_positive() {
        return Err(CliError::BadFlag("eps".into(), eps.to_string()));
    }
    let cfg = config_from_flags(flags, m)?;
    let r = kind.run(&inst, &cfg, seed).0;
    let a = analyze_intervals(&r, eps).expect("non-empty");
    let mut out = format!(
        "{kind} on {} jobs, m={m}: max flow {:.1} ticks (job J_{}), OPT >= {:.1}\n",
        inst.len(),
        a.flow.to_f64(),
        a.job,
        opt_max_flow(&inst, m).to_f64()
    );
    out.push_str(&format!(
        "interval decomposition (eps = {eps}): beta = {}, t' = {:.1}\n",
        a.beta(),
        a.t_prime.to_f64()
    ));
    let mut t = Table::new(["start", "end", "length", "defining job"]);
    for iv in &a.intervals {
        t.row([
            format!("{:.1}", iv.start.to_f64()),
            format!("{:.1}", iv.end.to_f64()),
            format!("{:.1}", iv.len().to_f64()),
            iv.defining_job
                .map(|j| format!("J_{j}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.push_str(&t.render());
    if let Some(l) = fault_summary(&kind.to_string(), &r) {
        out.push('\n');
        out.push_str(&l);
    }
    Ok(out)
}

/// `exec --stream on`: pull the workload's endless job source through the
/// O(active)-memory streaming simulation core instead of the threaded
/// executor. This is the multi-million-job mode (`--jobs 10000000`): the
/// executor path must materialize the whole instance up front, which at
/// that scale does not fit; the stream retires completed jobs back into a
/// free-listed slab, tracks the OPT lower bound incrementally, and keeps
/// exact max flow plus histogram percentiles in O(1) memory.
fn exec_stream_cmd(flags: &Flags) -> Result<String, CliError> {
    let (spec, m) = workload_from_flags(flags)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    if flags.get("faults").is_some() {
        return Err(CliError::BadFlag(
            "faults".into(),
            "not supported with --stream on (the streaming engines model a reliable machine)"
                .into(),
        ));
    }
    let cfg = config_from_flags(flags, m)?;
    let certify = match flags.get("certify") {
        None | Some("off" | "false" | "0") => false,
        Some("on" | "true" | "1") => true,
        Some(other) => return Err(CliError::BadFlag("certify".into(), other.into())),
    };
    let jobs = spec.n_jobs as u64;
    let obs_path = flags.get("obs-json").map(str::to_string);
    let mut rec = obs_path.as_deref().map(JsonRecorder::new);
    let started = std::time::Instant::now(); // lint: allow(nondeterminism) wall-clock jobs/s reporting only; the schedule is seed-deterministic
    let run = match flags.get("policy").unwrap_or("steal-16-first") {
        "fifo" => match rec.as_mut() {
            Some(r) => parflow_bench::stream::run_stream_fifo_observed(&spec, &cfg, jobs, r),
            None => parflow_bench::stream::run_stream_fifo(&spec, &cfg, jobs),
        },
        s => {
            let policy = match s {
                "admit-first" => crate::core::StealPolicy::AdmitFirst,
                _ => {
                    let k = s
                        .strip_prefix("steal-")
                        .and_then(|t| t.strip_suffix("-first"))
                        .and_then(|k| k.parse().ok())
                        .ok_or_else(|| CliError::BadFlag("policy".into(), s.into()))?;
                    crate::core::StealPolicy::StealKFirst { k }
                }
            };
            match rec.as_mut() {
                Some(r) => parflow_bench::stream::run_stream_ws_observed(
                    &spec, &cfg, policy, seed, jobs, r,
                ),
                None => parflow_bench::stream::run_stream_ws(&spec, &cfg, policy, seed, jobs),
            }
        }
    }
    .map_err(|e| CliError::Io(format!("stream: {e}")))?;
    let wall = started.elapsed().as_secs_f64();
    let to_ms = 1000.0 / crate::workloads::TICKS_PER_SECOND;
    let mut out = format!(
        "streamed {} jobs on {m} workers in {:.1}s ({:.0} jobs/s, {:.2e} rounds/s)\n",
        run.summary.jobs,
        wall,
        run.summary.jobs as f64 / wall.max(1e-9),
        run.summary.total_rounds as f64 / wall.max(1e-9),
    );
    out.push_str(&format!(
        "max flow {:.2} ms, mean {:.2} ms, ~p99 {:.2} ms ({} NaN excluded)\n",
        run.summary.max_flow.to_f64() * to_ms,
        run.flows.mean().unwrap_or(0.0) * to_ms,
        run.flows.quantile(0.99).unwrap_or(0.0) * to_ms,
        run.flows.nan(),
    ));
    out.push_str(&format!(
        "live OPT bound {:.2} ms -> ratio {:.2}\n",
        run.opt.combined_lower_bound().to_f64() * to_ms,
        run.competitive_ratio().unwrap_or(0.0),
    ));
    if certify {
        // Exact-arithmetic P5 check: at speed 1 the streamed max flow can
        // never beat the OPT lower bound over the same arrivals. A
        // violation is a hard error (broken engine or tracker), not a line
        // in the report.
        let report = parflow_certify::certify_stream_summary(
            cfg.speed,
            run.summary.jobs,
            run.summary.max_flow,
            run.opt.combined_lower_bound(),
        );
        if !report.is_clean() {
            return Err(CliError::Io(report.render()));
        }
        out.push_str(&format!("{}\n", report.render()));
    }
    out.push_str(&format!(
        "retirement: {} retired, {} live high-water, {} slab slots (reuse {:.1}%), {} cursor slots",
        run.summary.retire.jobs_retired,
        run.summary.retire.live_jobs_high_water,
        run.summary.retire.slab_slots,
        run.summary.retire.slab_reuse_ratio().unwrap_or(0.0) * 100.0,
        run.summary.retire.cursor_slots,
    ));
    if let Some(kb) = parflow_bench::stream::peak_rss_kb() {
        out.push_str(&format!("\npeak RSS {:.1} MB (VmHWM)", kb as f64 / 1024.0));
    }
    if let Some(rec) = rec.as_mut() {
        rec.flush()
            .map_err(|e| CliError::Io(format!("obs-json: {e}")))?;
        out.push_str(&format!(
            "\n(obs json written to {})",
            obs_path.as_deref().unwrap_or_default()
        ));
    }
    Ok(out)
}

/// Run a generated workload on the *real* threaded executor (via the
/// bridge), with optional fault injection and watchdog deadline.
fn exec_cmd(flags: &Flags) -> Result<String, CliError> {
    match flags.get("stream") {
        Some("on" | "true" | "1") => return exec_stream_cmd(flags),
        Some("off" | "false" | "0") | None => {}
        Some(other) => return Err(CliError::BadFlag("stream".into(), other.into())),
    }
    let (spec, m) = workload_from_flags(flags)?;
    let seed: u64 = flags.parse_or("seed", 42u64)?;
    let policy = match flags.get("policy").unwrap_or("admit-first") {
        "admit-first" => RtPolicy::AdmitFirst,
        s => {
            let k = s
                .strip_prefix("steal-")
                .and_then(|t| t.strip_suffix("-first"))
                .and_then(|k| k.parse().ok())
                .ok_or_else(|| CliError::BadFlag("policy".into(), s.into()))?;
            RtPolicy::StealKFirst { k }
        }
    };
    let compress: f64 = flags.parse_or("compress", 1000.0)?;
    if !(compress > 0.0 && compress.is_finite()) {
        return Err(CliError::BadFlag("compress".into(), compress.to_string()));
    }
    let iters: u64 = flags.parse_or("iters-per-unit", 20u64)?;
    if iters == 0 {
        return Err(CliError::BadFlag("iters-per-unit".into(), "0".into()));
    }
    let obs_path = flags.get("obs-json").map(str::to_string);
    let mut rec = obs_path.as_deref().map(JsonRecorder::new);
    if let Some(r) = rec.as_mut() {
        r.span_begin("exec.generate");
    }
    let inst = spec.generate();
    if inst.is_empty() {
        return Err(CliError::BadFlag("jobs".into(), "0".into()));
    }
    let wl = instance_to_workload(&inst, &BridgeConfig::compressed(iters, compress));
    if let Some(r) = rec.as_mut() {
        r.span_end("exec.generate");
    }
    let mut cfg = RuntimeConfig::new(m, policy).with_seed(seed);
    if let Some(s) = flags.get("faults") {
        cfg = cfg.with_faults(parse_faults(s)?);
    }
    if let Some(s) = flags.get("deadline") {
        cfg = cfg.with_deadline(parse_deadline(s)?);
    }
    if let Some(r) = rec.as_mut() {
        r.span_begin("exec.run");
    }
    let r = try_run_workload(&cfg, &wl).map_err(|e| match e.error {
        RuntimeError::InvalidFaultPlan(msg) => CliError::BadFlag("faults".into(), msg),
        other => CliError::Io(other.to_string()),
    })?;
    if let Some(rec) = rec.as_mut() {
        rec.span_end("exec.run");
    }
    let count = |s: JobStatus| r.jobs.iter().filter(|j| j.status == s).count();
    let mut out = format!(
        "executed {} jobs on {m} workers in {:.1} ms ({compress}x compressed time)\n",
        r.jobs.len(),
        r.elapsed.as_secs_f64() * 1e3,
    );
    out.push_str(&format!(
        "status: {} completed, {} failed, {} aborted{}\n",
        count(JobStatus::Completed),
        count(JobStatus::Failed),
        count(JobStatus::Aborted),
        if r.aborted {
            " [run aborted by watchdog]"
        } else {
            ""
        }
    ));
    out.push_str(&format!(
        "max flow {:.2} ms (completed only: {:.2} ms), mean {:.2} ms\n",
        r.max_flow().as_secs_f64() * 1e3,
        r.max_completed_flow().as_secs_f64() * 1e3,
        r.mean_flow().as_secs_f64() * 1e3,
    ));
    out.push_str(&format!(
        "steals {}/{}, admissions {}, task panics {}, orphaned tasks {}, fault events {}",
        r.stats.successful_steals,
        r.stats.steal_attempts,
        r.stats.admissions,
        r.stats.task_panics,
        r.stats.orphaned_tasks,
        r.fault_events.len(),
    ));
    if let Some(rec) = rec.as_mut() {
        r.observe_into(rec);
        rec.flush()
            .map_err(|e| CliError::Io(format!("obs-json: {e}")))?;
        out.push_str(&format!(
            "\n(obs json written to {})",
            obs_path.as_deref().unwrap_or_default()
        ));
    }
    Ok(out)
}

fn dot_cmd(flags: &Flags) -> Result<String, CliError> {
    let shape = flags.require("shape")?;
    let dag = match shape {
        "single" => shapes::single_node(flags.parse_or("work", 10u64)?),
        "chain" => shapes::chain(
            flags.parse_or("len", 4usize)?,
            flags.parse_or("work", 2u64)?,
        ),
        "diamond" => shapes::diamond(
            flags.parse_or("width", 4usize)?,
            flags.parse_or("work", 2u64)?,
        ),
        "parallel-for" => shapes::parallel_for(
            flags.parse_or("work", 40u64)?,
            flags.parse_or("chunks", 8usize)?,
        ),
        "fork-join" => shapes::fork_join(
            flags.parse_or("depth", 3u32)?,
            flags.parse_or("leaf", 4u64)?,
        ),
        "map-reduce" => shapes::map_reduce(
            flags.parse_or("mappers", 4usize)?,
            flags.parse_or("map-work", 5u64)?,
            flags.parse_or("reducers", 2usize)?,
            flags.parse_or("reduce-work", 3u64)?,
        ),
        "pipeline" => shapes::pipeline(
            flags.parse_or("stages", 3usize)?,
            flags.parse_or("items", 4usize)?,
            flags.parse_or("work", 2u64)?,
        ),
        "adversarial" => shapes::adversarial_tiny(flags.parse_or("m", 40usize)?),
        other => return Err(CliError::BadFlag("shape".into(), other.into())),
    };
    Ok(dag.to_dot(&shape.replace('-', "_")))
}

/// Entry point: dispatch on the first argument.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::UnknownCommand("<none>".into()))?;
    if cmd == "serve" {
        // The streaming admission service has its own flag grammar
        // (boolean flags, subcommands); delegate before Flags::parse.
        return parflow_serve::cli::run(rest).map_err(|e| CliError::Io(e.to_string()));
    }
    if cmd == "sweep" {
        // The mega-sweep harness also has boolean flags (--resume);
        // delegate before Flags::parse.
        return parflow_bench::sweep::cli_main(rest).map_err(CliError::Io);
    }
    // `--stream` and `--certify` read naturally as bare flags (`exec
    // --stream --certify --jobs 10000000`); Flags::parse wants `--key
    // value` pairs, so a bare occurrence is normalized to `... on`
    // before parsing.
    let normalized: Vec<String>;
    let is_bare = |a: &str| a == "--stream" || a == "--certify";
    let rest = if cmd == "exec" && rest.iter().any(|a| is_bare(a)) {
        let mut v = Vec::with_capacity(rest.len() + 2);
        let mut it = rest.iter().peekable();
        while let Some(a) = it.next() {
            v.push(a.clone());
            if is_bare(a) && it.peek().is_none_or(|n| n.starts_with("--")) {
                v.push("on".to_string());
            }
        }
        normalized = v;
        &normalized[..]
    } else {
        rest
    };
    let flags = Flags::parse(rest)?;
    match cmd.as_str() {
        "simulate" => simulate_cmd(&flags),
        "compare" => compare_cmd(&flags),
        "generate" => generate_cmd(&flags),
        "analyze" => analyze_cmd(&flags),
        "exec" => exec_cmd(&flags),
        "dot" => dot_cmd(&flags),
        other => Err(CliError::UnknownCommand(other.into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// True when a real `serde_json` is linked (the offline build stubs it
    /// out; see vendor/offline-stubs/README.md).
    fn serde_available() -> bool {
        serde_json::from_str::<i32>("1").is_ok()
    }

    #[test]
    fn no_command_errors() {
        assert!(matches!(run_cli(&[]), Err(CliError::UnknownCommand(_))));
        assert!(matches!(
            run_cli(&argv("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn serve_delegates_to_the_serve_crate() {
        let out = run_cli(&argv("serve emit --n 3 --seed 1")).expect("serve emit");
        assert_eq!(out.lines().count(), 3);
        assert!(out.lines().all(|l| l.starts_with('{')));
        // Serve-side errors surface as CliError::Io.
        assert!(matches!(
            run_cli(&argv("serve bogus")),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn simulate_small() {
        let out = run_cli(&argv(
            "simulate --dist finance --qps 2000 --jobs 200 --m 4 --scheduler fifo",
        ))
        .unwrap();
        assert!(out.contains("fifo"));
        assert!(out.contains("max flow"));
        assert!(out.contains("utilization"));
    }

    #[test]
    fn simulate_requires_scheduler() {
        let err = run_cli(&argv("simulate --jobs 10")).unwrap_err();
        assert_eq!(err, CliError::MissingFlag("scheduler".into()));
    }

    #[test]
    fn simulate_rejects_bad_scheduler() {
        let err = run_cli(&argv("simulate --jobs 10 --scheduler warp")).unwrap_err();
        assert!(matches!(err, CliError::BadFlag(k, _) if k == "scheduler"));
    }

    #[test]
    fn compare_lists_all_schedulers() {
        let out = run_cli(&argv("compare --dist bing --qps 3000 --jobs 150 --m 4")).unwrap();
        for name in [
            "fifo",
            "bwf",
            "lifo",
            "sjf",
            "equi",
            "admit-first",
            "steal-16-first",
        ] {
            assert!(out.contains(name), "missing {name} in output");
        }
    }

    #[test]
    fn generate_and_analyze_roundtrip() {
        if !serde_available() {
            eprintln!("skipping: serde_json is stubbed in this offline build");
            return;
        }
        let dir = std::env::temp_dir().join("parflow_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wl.json");
        let path_s = path.to_str().unwrap();
        let out = run_cli(&argv(&format!(
            "generate --dist finance --qps 2000 --jobs 100 --out {path_s}"
        )))
        .unwrap();
        assert!(out.contains("wrote 100 jobs"));
        let out = run_cli(&argv(&format!(
            "analyze --in {path_s} --scheduler fifo --m 4 --eps 1/10"
        )))
        .unwrap();
        assert!(out.contains("interval decomposition"));
        assert!(out.contains("max flow"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn analyze_missing_file_errors() {
        let err = run_cli(&argv("analyze --in /no/such/file.json")).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn dot_shapes() {
        for shape in [
            "single",
            "chain",
            "diamond",
            "parallel-for",
            "fork-join",
            "map-reduce",
            "pipeline",
            "adversarial",
        ] {
            let out = run_cli(&argv(&format!("dot --shape {shape}"))).unwrap();
            assert!(out.starts_with("digraph"), "{shape}: {out}");
        }
        assert!(run_cli(&argv("dot --shape blob")).is_err());
        assert!(matches!(
            run_cli(&argv("dot")),
            Err(CliError::MissingFlag(_))
        ));
    }

    #[test]
    fn speed_parsing() {
        assert_eq!(parse_speed("2").unwrap(), Speed::integer(2));
        assert_eq!(parse_speed("11/10").unwrap(), Speed::new(11, 10));
        assert!(parse_speed("0").is_err());
        assert!(parse_speed("a/b").is_err());
        // and through the full pipeline:
        let out = run_cli(&argv(
            "simulate --jobs 100 --m 4 --qps 2000 --scheduler fifo --speed 11/10",
        ))
        .unwrap();
        assert!(out.contains("fifo"));
    }

    #[test]
    fn steal_cost_flag() {
        assert!(run_cli(&argv(
            "simulate --jobs 50 --m 2 --qps 2000 --scheduler admit-first --steals unit"
        ))
        .is_ok());
        assert!(run_cli(&argv(
            "simulate --jobs 50 --m 2 --qps 2000 --scheduler admit-first --steals maybe"
        ))
        .is_err());
    }

    #[test]
    fn flag_parser_rejects_stragglers() {
        assert!(Flags::parse(&argv("--key")).is_err());
        assert!(Flags::parse(&argv("orphan value")).is_err());
        let f = Flags::parse(&argv("--a 1 --b two")).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.get("b"), Some("two"));
    }

    // ---- CliError coverage: every variant, constructed and displayed ----

    #[test]
    fn every_error_variant_is_reachable_and_displays() {
        // UnknownCommand
        let e = run_cli(&argv("warp")).unwrap_err();
        assert!(matches!(e, CliError::UnknownCommand(_)));
        assert!(e.to_string().contains("unknown command"));
        assert!(e.to_string().contains("exec"), "usage must list exec");
        // BadFlag
        let e = run_cli(&argv("simulate --jobs nope --scheduler fifo")).unwrap_err();
        assert_eq!(e, CliError::BadFlag("jobs".into(), "nope".into()));
        assert!(e.to_string().contains("bad value 'nope'"));
        // MissingFlag
        let e = run_cli(&argv("generate --jobs 5")).unwrap_err();
        assert_eq!(e, CliError::MissingFlag("out".into()));
        assert!(e.to_string().contains("missing required flag --out"));
        // Io
        let e = run_cli(&argv("analyze --in /no/such/file.json")).unwrap_err();
        assert!(matches!(e, CliError::Io(_)));
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn bad_flag_variants_across_commands() {
        // Non-numeric and out-of-range values on each numeric flag.
        for cmd in [
            "simulate --qps -5 --scheduler fifo",
            "simulate --qps inf --scheduler fifo",
            "simulate --m 0 --scheduler fifo",
            "simulate --seed x --scheduler fifo",
            "simulate --jobs 0 --scheduler fifo",
            "simulate --jobs 10 --scheduler fifo --speed 0",
            "simulate --jobs 10 --scheduler fifo --steals maybe",
            "simulate --jobs 10 --scheduler fifo --faults crash",
            "exec --compress 0",
            "exec --compress nan",
            "exec --iters-per-unit 0",
            "exec --policy warp-first",
            "exec --jobs 0",
        ] {
            let e = run_cli(&argv(cmd)).unwrap_err();
            assert!(
                matches!(e, CliError::BadFlag(..) | CliError::MissingFlag(_)),
                "{cmd}: {e:?}"
            );
        }
        // eps must be a positive rational with a non-zero denominator.
        assert!(parse_rational("eps", "1/0").is_err());
        assert!(parse_rational("eps", "x").is_err());
    }

    // ---- --faults / --deadline parsing ----

    #[test]
    fn fault_spec_round_trips_every_kind() {
        let plan =
            parse_faults("crash:3@1000,slow:2x0.5,stall:1@50+10,blackhole:0,panic:0.01").unwrap();
        assert_eq!(plan.crash_round_of(3), Some(1000));
        assert_eq!(plan.rate_ppm_of(2), 500_000);
        assert!(plan.is_stalled(1, 55));
        assert!(plan.is_blackhole(0));
        assert_eq!(plan.panic_ppm, 10_000);
        // Whitespace and empty segments are tolerated.
        let plan = parse_faults(" crash:0@5 , ,panic:1 ").unwrap();
        assert_eq!(plan.crash_round_of(0), Some(5));
        assert_eq!(plan.panic_ppm, PPM);
        // Empty spec is an empty plan.
        assert!(parse_faults("").unwrap().is_empty());
    }

    #[test]
    fn malformed_fault_specs_are_rejected() {
        for bad in [
            "crash",           // no spec at all
            "crash:3",         // missing @round
            "crash:x@5",       // non-numeric worker
            "crash:3@",        // missing round
            "slow:2",          // missing factor
            "slow:2x0",        // zero factor = frozen, use stall/crash
            "slow:2x1.5",      // faster than full speed
            "slow:2x-0.5",     // negative
            "slow:2xnan",      // NaN must not pass the range check
            "stall:1@50",      // missing +duration
            "stall:1@x+5",     // non-numeric from
            "blackhole:",      // missing worker
            "blackhole:zero",  // non-numeric worker
            "panic:1.5",       // probability > 1
            "panic:-0.1",      // negative probability
            "panic:often",     // non-numeric
            "meteor:1@2",      // unknown fault kind
            "crash:1@2,panic", // good entry followed by bad one
        ] {
            let e = parse_faults(bad).unwrap_err();
            assert!(
                matches!(e, CliError::BadFlag(ref k, _) if k == "faults"),
                "{bad}: {e:?}"
            );
        }
    }

    #[test]
    fn fault_plan_validated_against_machine_size() {
        // Worker 7 does not exist on a 4-core simulated machine.
        let e = run_cli(&argv(
            "simulate --jobs 20 --m 4 --qps 2000 --scheduler admit-first --faults crash:7@0",
        ))
        .unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "faults"),
            "{e:?}"
        );
        // Crashing every worker leaves nobody to finish the work.
        let e = run_cli(&argv(
            "simulate --jobs 20 --m 2 --qps 2000 --scheduler admit-first \
             --faults crash:0@0,crash:1@0",
        ))
        .unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "faults"),
            "{e:?}"
        );
    }

    #[test]
    fn simulate_with_faults_reports_flows() {
        let out = run_cli(&argv(
            "simulate --jobs 100 --m 4 --qps 2000 --scheduler steal-4-first \
             --faults crash:3@100,slow:2x0.5",
        ))
        .unwrap();
        assert!(out.contains("max flow"));
    }

    #[test]
    fn deadline_parsing() {
        assert_eq!(parse_deadline("30s").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_deadline("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_deadline("0.25").unwrap(), Duration::from_millis(250));
        for bad in ["", "s", "ms", "-1s", "0s", "0", "soon", "nan", "infs"] {
            let e = parse_deadline(bad).unwrap_err();
            assert!(
                matches!(e, CliError::BadFlag(ref k, _) if k == "deadline"),
                "{bad}: {e:?}"
            );
        }
    }

    #[test]
    fn exec_runs_real_executor() {
        let out = run_cli(&argv(
            "exec --jobs 10 --m 2 --qps 5000 --compress 20000 --iters-per-unit 1",
        ))
        .unwrap();
        assert!(out.contains("10 completed, 0 failed, 0 aborted"), "{out}");
        assert!(out.contains("max flow"));
    }

    #[test]
    fn exec_obs_json_writes_report() {
        let path = std::env::temp_dir().join("parflow_cli_exec_obs.json");
        let path_s = path.to_str().unwrap();
        let out = run_cli(&argv(&format!(
            "exec --jobs 10 --m 2 --qps 5000 --compress 20000 --iters-per-unit 1 \
             --obs-json {path_s}"
        )))
        .unwrap();
        assert!(
            out.contains(&format!("(obs json written to {path_s})")),
            "{out}"
        );
        let body = std::fs::read_to_string(&path).unwrap();
        // Aggregates, per-worker counters, the latency histogram and both
        // phase spans must all land in the report.
        for key in [
            "\"schema\": 1",
            "\"rt.tasks_executed\"",
            "\"rt.worker.tasks_executed[0]\"",
            "\"rt.worker.tasks_executed[1]\"",
            "\"rt.job_flow_ms\"",
            "\"exec.generate\"",
            "\"exec.run\"",
        ] {
            assert!(body.contains(key), "missing {key} in:\n{body}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exec_with_full_panic_rate_fails_all_jobs() {
        let out = run_cli(&argv(
            "exec --jobs 8 --m 2 --qps 5000 --compress 20000 --iters-per-unit 1 \
             --policy steal-4-first --faults panic:1",
        ))
        .unwrap();
        assert!(out.contains("0 completed, 8 failed, 0 aborted"), "{out}");
    }

    #[test]
    fn exec_watchdog_aborts_stalled_machine() {
        // The only worker stalls forever; the watchdog must end the run.
        let out = run_cli(&argv(
            "exec --jobs 4 --m 1 --qps 5000 --compress 20000 --iters-per-unit 1 \
             --faults stall:0@0+100000000 --deadline 60ms",
        ))
        .unwrap();
        assert!(out.contains("aborted"), "{out}");
        assert!(out.contains("[run aborted by watchdog]"), "{out}");
    }

    #[test]
    fn exec_rejects_invalid_plan_for_machine() {
        let e = run_cli(&argv(
            "exec --jobs 4 --m 2 --qps 5000 --compress 20000 --iters-per-unit 1 \
             --faults blackhole:9",
        ))
        .unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "faults"),
            "{e:?}"
        );
    }

    // ---- exec --stream: the O(active)-memory streaming path ----

    #[test]
    fn exec_stream_runs_and_reports() {
        // Bare `--stream` is normalized to `--stream on` before parsing.
        let out = run_cli(&argv("exec --stream --jobs 200 --m 4 --qps 5000")).unwrap();
        assert!(out.contains("streamed 200 jobs on 4 workers"), "{out}");
        assert!(out.contains("live OPT bound"), "{out}");
        assert!(out.contains("retirement:"), "{out}");
        // Explicit value form behaves identically.
        let out2 = run_cli(&argv("exec --stream on --jobs 200 --m 4 --qps 5000")).unwrap();
        assert!(out2.contains("streamed 200 jobs"), "{out2}");
        // `--stream off` falls through to the threaded executor.
        let out3 = run_cli(&argv(
            "exec --stream off --jobs 10 --m 2 --qps 5000 --compress 20000 --iters-per-unit 1",
        ))
        .unwrap();
        assert!(out3.contains("executed 10 jobs"), "{out3}");
    }

    #[test]
    fn exec_stream_accepts_every_policy_spelling() {
        for policy in ["fifo", "admit-first", "steal-4-first"] {
            let out = run_cli(&argv(&format!(
                "exec --stream --jobs 100 --m 2 --qps 5000 --policy {policy}"
            )))
            .unwrap();
            assert!(out.contains("streamed 100 jobs"), "{policy}: {out}");
        }
        let e = run_cli(&argv(
            "exec --stream --jobs 100 --m 2 --qps 5000 --policy warp-first",
        ))
        .unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "policy"),
            "{e:?}"
        );
    }

    #[test]
    fn exec_stream_rejects_faults_and_bad_values() {
        let e = run_cli(&argv(
            "exec --stream --jobs 100 --m 2 --qps 5000 --faults panic:0.5",
        ))
        .unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "faults"),
            "{e:?}"
        );
        let e = run_cli(&argv("exec --stream maybe --jobs 100 --m 2 --qps 5000")).unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "stream"),
            "{e:?}"
        );
    }

    #[test]
    fn exec_stream_certify_reports_certificate() {
        // Bare `--certify` normalizes like `--stream`; the run must pass
        // the P5 check and append the certificate line.
        for flags in [
            "exec --stream --certify --jobs 200 --m 4 --qps 5000",
            "exec --stream on --certify on --jobs 200 --m 4 --qps 5000 --policy fifo",
        ] {
            let out = run_cli(&argv(flags)).unwrap();
            assert!(out.contains("certify: clean"), "{flags}: {out}");
        }
        // An unparsable value is a flag error, not a silent no-op.
        let e = run_cli(&argv(
            "exec --stream --certify maybe --jobs 100 --m 2 --qps 5000",
        ))
        .unwrap_err();
        assert!(
            matches!(e, CliError::BadFlag(ref k, _) if k == "certify"),
            "{e:?}"
        );
    }
}
