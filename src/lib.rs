//! # parflow
//!
//! Online scheduling of parallelizable DAG jobs to minimize the maximum
//! flow time — a from-scratch Rust reproduction of Agrawal, Li, Lu &
//! Moseley, *"Scheduling Parallelizable Jobs Online to Minimize the Maximum
//! Flow Time"* (SPAA 2016).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`dag`] — the DAG job model (work/span, dynamic unfolding, shape
//!   generators);
//! * [`core`] — the schedulers: FIFO, BWF, admit-first and steal-k-first
//!   work stealing, the simulated-OPT lower bound, schedule traces and the
//!   Figure 1 interval analyzer;
//! * [`workloads`] — the Bing / finance / log-normal workloads, Poisson
//!   arrivals, and the Section 5 adversarial instance;
//! * [`runtime`] — a real crossbeam-based work-stealing executor with the
//!   same admission policies, measuring wall-clock flow times;
//! * [`metrics`] — flow statistics, histograms, tables;
//! * [`obs`] — the structured observability layer (recorders, events,
//!   `--obs-json` run reports);
//! * [`time`] — exact rational time/speed arithmetic.
//!
//! ## Quickstart
//!
//! ```
//! use parflow::prelude::*;
//!
//! // 100 parallel-for jobs (~10 ms each) arriving at 1000 QPS on 16 cores.
//! let spec = WorkloadSpec::paper_fig2(DistKind::Bing, 1000.0, 100, 42);
//! let inst = spec.generate();
//!
//! let cfg = SimConfig::new(16).with_free_steals();
//! let ws = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 1);
//! let opt = opt_max_flow(&inst, 16);
//!
//! assert!(ws.max_flow() >= opt); // OPT lower-bounds every feasible schedule
//! ```

#![forbid(unsafe_code)]

pub mod bridge;
pub mod cli;

pub use parflow_core as core;
pub use parflow_dag as dag;
pub use parflow_metrics as metrics;
pub use parflow_obs as obs;
pub use parflow_runtime as runtime;
pub use parflow_time as time;
pub use parflow_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use parflow_core::{
        analyze_intervals, opt_max_flow, opt_weighted_lower_bound, run_equi, run_priority,
        run_worksteal, simulate_bwf, simulate_equi, simulate_fifo, simulate_worksteal,
        BacklogSample, BiggestWeightFirst, Fifo, SimConfig, SimResult, StealCost, StealPolicy,
        VictimStrategy,
    };
    pub use parflow_dag::{shapes, DagBuilder, DagCursor, Instance, Job, JobDag};
    pub use parflow_metrics::{lk_norm, max_stretch, FlowStats, Histogram, Table};
    pub use parflow_obs::{AggregatingRecorder, JsonRecorder, NullRecorder, ObsReport, Recorder};
    pub use parflow_time::{Rational, Speed};
    pub use parflow_workloads::{
        lower_bound_instance, qps_for_utilization, DistKind, ShapeKind, WorkloadSpec,
        TICKS_PER_SECOND,
    };
}
