//! Bridge between the simulator's world (instances with integer work units
//! and tick arrivals) and the real runtime's world (spin iterations and
//! wall-clock arrival offsets).
//!
//! This lets the *same* generated workload (e.g. the Figure 2 Bing
//! instance) drive both the discrete-round simulator and the crossbeam
//! executor, so the two layers can be compared on identical inputs.

use parflow_dag::Instance;
use parflow_runtime::{spin_kernel, JobSpec};
use parflow_workloads::TICKS_PER_SECOND;
use std::time::{Duration, Instant};

/// How real time maps onto simulated ticks.
#[derive(Clone, Copy, Debug)]
pub struct BridgeConfig {
    /// Spin-kernel iterations corresponding to one work unit
    /// (calibrate with [`calibrate_iters_per_unit`], or pick a fixed value
    /// for deterministic load generation).
    pub iters_per_unit: u64,
    /// Wall-clock seconds per simulated tick. `1.0 / TICKS_PER_SECOND`
    /// replays the workload in real time; smaller values compress it.
    pub seconds_per_tick: f64,
}

impl BridgeConfig {
    /// Replay in real time with the given per-unit spin count.
    pub fn realtime(iters_per_unit: u64) -> Self {
        assert!(iters_per_unit > 0);
        BridgeConfig {
            iters_per_unit,
            seconds_per_tick: 1.0 / TICKS_PER_SECOND,
        }
    }

    /// Replay `factor`× faster than real time.
    pub fn compressed(iters_per_unit: u64, factor: f64) -> Self {
        assert!(factor > 0.0);
        BridgeConfig {
            iters_per_unit,
            seconds_per_tick: 1.0 / (TICKS_PER_SECOND * factor),
        }
    }
}

/// Measure how many spin-kernel iterations this machine executes in one
/// work unit's worth of wall time (0.1 ms). The result varies with the
/// host; use it when the runtime workload should saturate the machine the
/// same way the simulated one does.
pub fn calibrate_iters_per_unit() -> u64 {
    // Time a fixed batch, then scale to 0.1 ms.
    const BATCH: u64 = 2_000_000;
    let start = Instant::now();
    std::hint::black_box(spin_kernel(BATCH, 1));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let iters_per_sec = BATCH as f64 / elapsed;
    ((iters_per_sec * 1e-4) as u64).max(1)
}

/// Convert a simulated instance into a runtime workload.
///
/// Each job becomes a flat parallel-for with one chunk per chunk node of
/// its DAG (total nodes minus source and sink, at least 1) carrying
/// `work × iters_per_unit / chunks` iterations; arrivals are scaled by
/// `seconds_per_tick`.
pub fn instance_to_workload(instance: &Instance, cfg: &BridgeConfig) -> Vec<(Duration, JobSpec)> {
    instance
        .jobs()
        .iter()
        .map(|job| {
            let offset = Duration::from_secs_f64(job.arrival as f64 * cfg.seconds_per_tick);
            let chunks = job.dag.num_nodes().saturating_sub(2).max(1);
            let total_iters = job.work().saturating_mul(cfg.iters_per_unit);
            (offset, JobSpec::split(total_iters, chunks))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parflow_workloads::{DistKind, WorkloadSpec};

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate_iters_per_unit() >= 1);
    }

    #[test]
    fn workload_conversion_preserves_count_and_order() {
        let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 1000.0, 50, 3).generate();
        let wl = instance_to_workload(&inst, &BridgeConfig::compressed(100, 10.0));
        assert_eq!(wl.len(), inst.len());
        // Offsets non-decreasing (instance is arrival-sorted).
        assert!(wl.windows(2).all(|w| w[0].0 <= w[1].0));
        // Iterations scale with work.
        for (job, (_, spec)) in inst.jobs().iter().zip(&wl) {
            let total = spec.iters_per_chunk * spec.chunks as u64;
            // Rounding across chunks loses at most one chunk's worth.
            assert!(total <= job.work() * 100 + spec.chunks as u64);
            assert!(total + spec.iters_per_chunk * spec.chunks as u64 >= job.work() * 100 / 2);
        }
    }

    #[test]
    fn time_compression_scales_offsets() {
        let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 500.0, 10, 1).generate();
        let slow = instance_to_workload(&inst, &BridgeConfig::realtime(10));
        let fast = instance_to_workload(&inst, &BridgeConfig::compressed(10, 100.0));
        let last_slow = slow.last().unwrap().0;
        let last_fast = fast.last().unwrap().0;
        let ratio = last_slow.as_secs_f64() / last_fast.as_secs_f64().max(1e-12);
        assert!((ratio - 100.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn bridged_workload_runs_on_the_executor() {
        use parflow_runtime::{run_workload, RtPolicy, RuntimeConfig};
        let inst = WorkloadSpec::paper_fig2(DistKind::Finance, 4000.0, 12, 9).generate();
        // Tiny spin counts and 1000x compression keep the test fast.
        let wl = instance_to_workload(&inst, &BridgeConfig::compressed(20, 1000.0));
        let r = run_workload(&RuntimeConfig::new(2, RtPolicy::AdmitFirst), &wl);
        assert_eq!(r.jobs.len(), 12);
        assert!(r.jobs.iter().all(|j| j.flow > Duration::ZERO));
    }
}
