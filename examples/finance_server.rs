//! An option-pricing finance server with *priorities*: premium requests
//! carry higher weights and the objective is maximum weighted flow time
//! (Section 7 of the paper). Compares Biggest-Weight-First against plain
//! FIFO.
//!
//! ```text
//! cargo run --release --example finance_server
//! ```

use parflow::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const M: usize = 16;
const N_JOBS: usize = 10_000;

fn main() {
    // Finance-distributed work at ~65 % utilization.
    let spec = WorkloadSpec::paper_fig2(DistKind::Finance, 950.0, N_JOBS, 91);
    let base = spec.generate();

    // Weight tiers: 90 % standard (w=1), 9 % gold (w=10), 1 % platinum
    // (w=100). Weights are uncorrelated with request size.
    let mut rng = SmallRng::seed_from_u64(17);
    let jobs: Vec<Job> = base
        .jobs()
        .iter()
        .map(|j| {
            let weight = match rng.gen_range(0..100u32) {
                0 => 100,
                1..=9 => 10,
                _ => 1,
            };
            Job::weighted(j.id, j.arrival, weight, Arc::clone(&j.dag))
        })
        .collect();
    let inst = Instance::new(jobs);
    println!(
        "finance server: m = {M}, {N_JOBS} requests, utilization {:.0}%",
        inst.utilization(M).map(|u| u.to_f64()).unwrap_or(0.0) * 100.0
    );

    let cfg = SimConfig::new(M);
    let bwf = simulate_bwf(&inst, &cfg);
    let fifo = simulate_fifo(&inst, &cfg);
    let lb = opt_weighted_lower_bound(&inst, M);

    let to_ms = 1000.0 / TICKS_PER_SECOND;
    let mut table = Table::new([
        "scheduler",
        "max weighted flow (w*ms)",
        "vs weighted LB",
        "platinum max flow (ms)",
        "standard max flow (ms)",
    ]);
    for (name, r) in [("BWF", &bwf), ("FIFO", &fifo)] {
        let tier_max = |lo: u64, hi: u64| {
            r.outcomes
                .iter()
                .filter(|o| (lo..=hi).contains(&o.weight))
                .map(|o| o.flow)
                .max()
                .map(|f| f.to_f64() * to_ms)
                .unwrap_or(0.0)
        };
        table.row([
            name.to_string(),
            format!("{:.1}", r.max_weighted_flow().to_f64() * to_ms),
            format!("{:.2}x", (r.max_weighted_flow() / lb).to_f64()),
            format!("{:.1}", tier_max(100, 100)),
            format!("{:.1}", tier_max(1, 1)),
        ]);
    }
    println!("\n{}", table.render());
    println!("BWF protects platinum requests (tiny max flow) at mild cost to standard ones.");
}
