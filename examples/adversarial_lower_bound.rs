//! The Section 5 lower bound, live: randomized work stealing is
//! Ω(log n)-competitive on tiny jobs, while FIFO stays optimal.
//!
//! Each job is one unit root enabling m/10 unit tasks; jobs are spaced so
//! they never overlap. If no thief finds the owner's deque in time, the job
//! runs sequentially (flow ≈ m/10); OPT finishes every job in 2 steps.
//!
//! ```text
//! cargo run --release --example adversarial_lower_bound
//! ```

use parflow::prelude::*;

fn main() {
    let mut table = Table::new([
        "m (=Θ(log n))",
        "n jobs",
        "WS max flow",
        "FIFO max flow",
        "OPT",
        "WS/OPT",
    ]);

    for m in [20usize, 40, 60, 80] {
        // Enough jobs that a fully sequential execution appears w.h.p.
        let n = ((40.0 * (m as f64 / 10.0).exp()).ceil() as usize).min(150_000);
        let inst = lower_bound_instance(n, m);
        let cfg = SimConfig::new(m); // unit-cost steals: the theory model
        let ws = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, m as u64);
        let fifo = simulate_fifo(&inst, &cfg);
        let opt = opt_max_flow(&inst, m).to_f64().max(2.0);
        table.row([
            m.to_string(),
            n.to_string(),
            format!("{:.1}", ws.max_flow().to_f64()),
            format!("{:.1}", fifo.max_flow().to_f64()),
            format!("{opt:.1}"),
            format!("{:.1}x", ws.max_flow().to_f64() / opt),
        ]);
    }

    println!("{}", table.render());
    println!("WS max flow grows ≈ m/10 (i.e. Ω(log n)); FIFO stays at the 2-step optimum.");
    println!("This is why Theorem 4.1's bound O(max{{OPT, ln n}}/ε²) cannot drop the ln n term.");
}
