//! Building a custom job DAG by hand with `DagBuilder`, inspecting it
//! (work, span, GraphViz), and scheduling it through every scheduler via
//! `SchedulerKind`.
//!
//! The DAG below is a small query plan: parse → {fetch index, fetch docs}
//! → rank → {snippet A, snippet B, snippet C} → render.
//!
//! ```text
//! cargo run --release --example custom_dag
//! ```

use parflow::core::SchedulerKind;
use parflow::prelude::*;
use std::sync::Arc;

fn build_query_plan() -> JobDag {
    let mut b = DagBuilder::new();
    let parse = b.add_node(2); // 0.2 ms
    let fetch_index = b.add_node(8);
    let fetch_docs = b.add_node(12);
    let rank = b.add_node(6);
    let snip_a = b.add_node(4);
    let snip_b = b.add_node(4);
    let snip_c = b.add_node(4);
    let render = b.add_node(2);
    for (from, to) in [
        (parse, fetch_index),
        (parse, fetch_docs),
        (fetch_index, rank),
        (fetch_docs, rank),
        (rank, snip_a),
        (rank, snip_b),
        (rank, snip_c),
        (snip_a, render),
        (snip_b, render),
        (snip_c, render),
    ] {
        b.add_edge(from, to).expect("edges are valid");
    }
    b.build().expect("query plan is a DAG")
}

fn main() {
    let dag = build_query_plan();
    println!(
        "query plan: {} nodes, work W = {} units ({:.1} ms), span P = {} units, parallelism {:.2}\n",
        dag.num_nodes(),
        dag.total_work(),
        dag.total_work() as f64 / 10.0,
        dag.span(),
        dag.parallelism()
    );
    println!(
        "GraphViz (pipe into `dot -Tsvg`):\n{}",
        dag.to_dot("query_plan")
    );

    // A stream of 40 such queries arriving every 1.5 ms on 4 cores.
    let dag = Arc::new(dag);
    let jobs: Vec<Job> = (0..40)
        .map(|i| Job::new(i, i as u64 * 15, dag.clone()))
        .collect();
    let inst = Instance::new(jobs);
    let cfg = SimConfig::new(4).with_free_steals();

    let mut t = Table::new(["scheduler", "max flow (ticks)", "mean flow", "vs OPT"]);
    let opt = opt_max_flow(&inst, 4);
    for kind in SchedulerKind::all() {
        let r = kind.run(&inst, &cfg, 7).0;
        t.row([
            kind.to_string(),
            format!("{:.1}", r.max_flow().to_f64()),
            format!("{:.1}", r.mean_flow()),
            format!("{:.2}x", (r.max_flow() / opt).to_f64()),
        ]);
    }
    println!("{}", t.render());
}
