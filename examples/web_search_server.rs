//! An interactive web-search server (the paper's motivating scenario):
//! Bing-like requests arriving at increasing load on a 16-core machine,
//! scheduled with work stealing.
//!
//! Reproduces the qualitative content of Figure 2(a): the maximum latency
//! of steal-16-first tracks the optimal baseline while admit-first degrades
//! as load grows.
//!
//! ```text
//! cargo run --release --example web_search_server
//! ```

use parflow::prelude::*;

const M: usize = 16;
const N_JOBS: usize = 20_000;

fn main() {
    println!("web search server: m = {M} cores, {N_JOBS} Bing-distributed requests\n");
    let cfg = SimConfig::new(M).with_free_steals();

    let mut table = Table::new([
        "QPS",
        "utilization",
        "OPT p100 (ms)",
        "steal-16 p100 (ms)",
        "admit-first p100 (ms)",
        "steal-16 p99 (ms)",
    ]);

    for qps in [800.0, 1000.0, 1200.0] {
        let spec = WorkloadSpec::paper_fig2(DistKind::Bing, qps, N_JOBS, 2024);
        let inst = spec.generate();
        let util = inst.utilization(M).map(|u| u.to_f64()).unwrap_or(0.0);

        let opt_ms = opt_max_flow(&inst, M).to_f64() * 1000.0 / TICKS_PER_SECOND;
        let steal = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 7);
        let admit = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 7);

        let flows: Vec<Rational> = steal.outcomes.iter().map(|o| o.flow).collect();
        let stats = FlowStats::from_flows(&flows).expect("non-empty");
        let to_ms = 1000.0 / TICKS_PER_SECOND;

        table.row([
            format!("{qps:.0}"),
            format!("{:.0}%", util * 100.0),
            format!("{opt_ms:.1}"),
            format!("{:.1}", steal.max_flow().to_f64() * to_ms),
            format!("{:.1}", admit.max_flow().to_f64() * to_ms),
            format!("{:.1}", stats.p99 * to_ms),
        ]);
    }

    println!("{}", table.render());
    println!("shape to look for: steal-16 stays near OPT; admit-first blows up with load.");
}
