//! Visual comparison of schedules: ASCII Gantt charts of the same small
//! instance under FIFO, EQUI, admit-first and steal-16-first.
//!
//! ```text
//! cargo run --release --example gantt
//! ```

use parflow::core::{render_gantt, run_equi, run_priority, run_worksteal, Fifo};
use parflow::prelude::*;
use std::sync::Arc;

fn main() {
    // Six diamond jobs (1 source, 4 middles of 3 units, 1 sink) arriving
    // every 4 ticks on 4 processors.
    let dag = Arc::new(shapes::diamond(4, 3));
    let jobs: Vec<Job> = (0..6)
        .map(|i| Job::new(i, i as u64 * 4, dag.clone()))
        .collect();
    let inst = Instance::new(jobs);
    let cfg = SimConfig::new(4).with_trace();

    println!("instance: 6 diamond jobs (W=14, P=5), arrivals every 4 ticks, m=4\n");

    let (r, t) = run_priority(&inst, &cfg, &Fifo);
    println!("FIFO (max flow {}):", r.max_flow());
    println!("{}", render_gantt(&t.unwrap(), 0, 60));

    let (r, t) = run_equi(&inst, &cfg);
    println!("EQUI (max flow {}):", r.max_flow());
    println!("{}", render_gantt(&t.unwrap(), 0, 60));

    let (r, t) = run_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 7);
    println!("admit-first work stealing (max flow {}):", r.max_flow());
    println!("{}", render_gantt(&t.unwrap(), 0, 60));

    let (r, t) = run_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 8 }, 7);
    println!("steal-8-first work stealing (max flow {}):", r.max_flow());
    println!("{}", render_gantt(&t.unwrap(), 0, 60));

    println!("reading: FIFO drains the oldest job with all processors; work");
    println!("stealing shows '*' rounds (failed/successful steals) and jobs");
    println!("executing on whichever worker admitted or stole them.");
}
