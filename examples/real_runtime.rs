//! The real multithreaded work-stealing executor (crossbeam deques + global
//! FIFO admission), the systems counterpart of the simulator — analogous to
//! the paper's extended-TBB implementation.
//!
//! Submits a burst of CPU-bound parallel-for jobs with staggered arrivals
//! and reports wall-clock maximum flow time under both admission policies.
//!
//! ```text
//! cargo run --release --example real_runtime
//! ```

use parflow::prelude::Table;
use parflow::runtime::{run_workload, JobSpec, RtPolicy, RuntimeConfig};
use std::time::Duration;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4);
    let n_jobs = 200;

    // ~0.5 ms of spin work per job, split into 8 chunks, arriving every
    // 100 µs — roughly 40 % utilization on 8 workers.
    let workload: Vec<(Duration, JobSpec)> = (0..n_jobs)
        .map(|i| {
            (
                Duration::from_micros(100 * i as u64),
                JobSpec::split(400_000, 8),
            )
        })
        .collect();

    println!("real runtime: {workers} workers, {n_jobs} jobs, parallel-for x8 chunks\n");
    let mut table = Table::new([
        "policy",
        "max flow (ms)",
        "mean flow (ms)",
        "steals ok/total",
        "tasks",
    ]);

    for (name, policy) in [
        ("admit-first", RtPolicy::AdmitFirst),
        ("steal-16-first", RtPolicy::StealKFirst { k: 16 }),
    ] {
        let cfg = RuntimeConfig::new(workers, policy);
        let result = run_workload(&cfg, &workload);
        table.row([
            name.to_string(),
            format!("{:.2}", result.max_flow().as_secs_f64() * 1e3),
            format!("{:.2}", result.mean_flow().as_secs_f64() * 1e3),
            format!(
                "{}/{}",
                result.stats.successful_steals, result.stats.steal_attempts
            ),
            result.stats.tasks_executed.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("note: wall-clock numbers vary with the host machine; the point is that");
    println!("both policies drive a real deque-based runtime to completion and expose");
    println!("the same admission-order trade-off the simulator isolates.");
}
