//! The *mechanism* behind Figure 2's gap, made visible: sample the global
//! queue and live-job counts over time under both admission policies.
//!
//! admit-first drains the queue eagerly (queue ≈ 0, many jobs in flight,
//! each running near-sequentially); steal-16-first keeps jobs queued and
//! finishes the admitted ones with full parallelism — the FIFO-like
//! behaviour that keeps the maximum flow time low.
//!
//! ```text
//! cargo run --release --example backlog_dynamics
//! ```

use parflow::prelude::*;

const M: usize = 16;

fn sparkline(values: &[usize]) -> String {
    const GLYPHS: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| GLYPHS[(v * (GLYPHS.len() - 1)).div_ceil(max).min(GLYPHS.len() - 1)])
        .collect()
}

fn main() {
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, 1200.0, 20_000, 8).generate();
    println!(
        "Bing workload @1200 QPS, m = {M}, n = {}, utilization {:.0}%\n",
        inst.len(),
        inst.utilization(M).map(|u| u.to_f64()).unwrap_or(0.0) * 100.0
    );

    let cfg = SimConfig::new(M).with_free_steals().with_sampling(2048);
    for policy in [StealPolicy::AdmitFirst, StealPolicy::StealKFirst { k: 16 }] {
        let r = simulate_worksteal(&inst, &cfg, policy, 5);
        let queued: Vec<usize> = r.samples.iter().map(|s| s.queued).collect();
        let live: Vec<usize> = r.samples.iter().map(|s| s.live).collect();
        println!(
            "{} — max flow {:.0} ticks",
            policy.name(),
            r.max_flow().to_f64()
        );
        println!(
            "  queued (peak {:>3}): {}",
            queued.iter().max().unwrap_or(&0),
            sparkline(&queued)
        );
        println!(
            "  live   (peak {:>3}): {}",
            live.iter().max().unwrap_or(&0),
            sparkline(&live)
        );
        println!();
    }
    println!("reading: admit-first's 'live' row saturates (jobs crawl side by side);");
    println!("steal-16-first parks load in 'queued' and keeps the live set small.");
}
