//! Quickstart: build jobs, schedule them three ways, compare max flow time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parflow::prelude::*;
use std::sync::Arc;

fn main() {
    // --- 1. Describe jobs as DAGs -----------------------------------------
    // A parallel-for request: 1-unit source → 8 chunks × 8 units → 1-unit
    // sink (1 unit = 0.1 ms of CPU work).
    let request = Arc::new(shapes::parallel_for(64, 8));
    println!(
        "job shape: {} nodes, work W = {} units, span P = {} units, parallelism {:.1}",
        request.num_nodes(),
        request.total_work(),
        request.span(),
        request.parallelism()
    );

    // Twenty such requests arriving every 0.5 ms (5 ticks).
    let jobs: Vec<Job> = (0..20)
        .map(|i| Job::new(i, i as u64 * 5, Arc::clone(&request)))
        .collect();
    let inst = Instance::new(jobs);

    // --- 2. Schedule on a simulated 8-core machine ------------------------
    let cfg = SimConfig::new(8).with_free_steals();

    let fifo = simulate_fifo(&inst, &cfg);
    let admit = simulate_worksteal(&inst, &cfg, StealPolicy::AdmitFirst, 42);
    let steal16 = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 42);
    let opt = opt_max_flow(&inst, 8);

    // --- 3. Compare against the optimal lower bound -----------------------
    let mut table = Table::new(["scheduler", "max flow (ticks)", "vs OPT"]);
    for (name, flow) in [
        ("OPT (lower bound)", opt),
        ("FIFO (idealized)", fifo.max_flow()),
        ("steal-16-first", steal16.max_flow()),
        ("admit-first", admit.max_flow()),
    ] {
        table.row([
            name.to_string(),
            format!("{:.1}", flow.to_f64()),
            format!("{:.2}x", (flow / opt).to_f64()),
        ]);
    }
    println!("\n{}", table.render());

    // Flow-time distribution under steal-16-first.
    let flows: Vec<Rational> = steal16.outcomes.iter().map(|o| o.flow).collect();
    let stats = FlowStats::from_flows(&flows).expect("non-empty");
    println!(
        "steal-16-first flows: mean {:.1}, p50 {:.1}, p95 {:.1}, max {} ticks",
        stats.mean, stats.p50, stats.p95, stats.max
    );
}
