//! Figure 1: reconstruct the interval decomposition the paper's proofs use,
//! from an actual simulated trace.
//!
//! We overload a small machine, find the job with the maximum flow time
//! `F_i`, and walk backwards building `[t_0, r_i]`, `[t_1, t_0]`, … — each
//! `t_a` being the arrival of the earliest job still unfinished right
//! before `t_{a−1}` — until an interval is shorter than `ε·F_i`.
//!
//! ```text
//! cargo run --release --example trace_intervals
//! ```

use parflow::prelude::*;

fn main() {
    // A bursty near-saturation workload so the backlog (and hence the
    // interval chain) is non-trivial.
    let qps = qps_for_utilization(DistKind::Bing, 8, 0.95);
    let inst = WorkloadSpec::paper_fig2(DistKind::Bing, qps, 5_000, 33).generate();
    let cfg = SimConfig::new(8).with_free_steals();
    let result = simulate_worksteal(&inst, &cfg, StealPolicy::StealKFirst { k: 16 }, 5);

    let eps = Rational::new(1, 10);
    let a = analyze_intervals(&result, eps).expect("non-empty instance");

    println!(
        "max-flow job: J_{}  r_i = {:.1}  c_i = {:.1}  F_i = {:.1} ticks (ε = {})",
        a.job,
        a.arrival.to_f64(),
        a.completion.to_f64(),
        a.flow.to_f64(),
        a.epsilon
    );
    println!(
        "β = {} recursive intervals; t' = {:.1}, t_β = {:.1} (t_β − t' = {:.1} ≤ ε·F_i = {:.1})\n",
        a.beta(),
        a.t_prime.to_f64(),
        a.t_beta().to_f64(),
        (a.t_beta() - a.t_prime).to_f64(),
        (eps * a.flow).to_f64(),
    );

    let mut table = Table::new(["interval", "start", "end", "length", "defined by job"]);
    let beta = a.beta();
    for (i, iv) in a.intervals.iter().enumerate() {
        let label = if i + 1 == a.intervals.len() {
            "[r_i, c_i]".to_string()
        } else if beta > i {
            format!("[t_{}, t_{}]", beta - i, beta.saturating_sub(i + 1))
        } else {
            "[t_0, r_i]".to_string()
        };
        table.row([
            label,
            format!("{:.1}", iv.start.to_f64()),
            format!("{:.1}", iv.end.to_f64()),
            format!("{:.1}", iv.len().to_f64()),
            iv.defining_job
                .map(|j| format!("J_{j}"))
                .unwrap_or_else(|| "—".into()),
        ]);
    }
    println!("{}", table.render());
    println!("(the proofs show the scheduler stays busy across these intervals,");
    println!(" bounding how far it can fall behind OPT — Sections 4 and 7)");
}
